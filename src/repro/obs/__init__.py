"""Self-observability for the reproduction's own pipeline.

Diogenes' thesis is *honest measurement*; this package turns that lens
on the tool itself.  It provides

* a structured tracer (:mod:`repro.obs.tracer`) emitting nested spans
  with both wall-time and virtual-time attribution, exportable as
  JSON-lines or a Chrome-trace file (loadable in Perfetto /
  ``chrome://tracing``);
* a metrics registry (:mod:`repro.obs.metrics`) of counters, gauges,
  and histograms, exportable as JSON or Prometheus text format;
* a renderer (:mod:`repro.obs.render`) for a human-readable per-stage
  summary table.

Observability is **off by default** and must cost ~nothing when off:
every hook point in the pipeline goes through the module-level helpers
below (:func:`span`, :func:`count`, :func:`gauge`, :func:`observe`),
which reduce to a ``None`` check when no :class:`Observability` bundle
is installed.  Hot paths therefore never build span objects, never
format names, and never touch a dict unless someone asked for
telemetry.

Typical use::

    import repro.obs as obs

    session = obs.enable()                 # install a live bundle
    try:
        report = Diogenes(workload).run()
    finally:
        obs.disable()
    session.tracer.write_chrome_trace("trace.json")
    session.metrics.write_prometheus("metrics.prom")

or, scoped::

    with obs.enabled() as session:
        Diogenes(workload).run()

See ``docs/observability.md`` for naming conventions and exporter
formats.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import _NOOP_HANDLE, Tracer

__all__ = [
    "Observability",
    "active",
    "count",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "is_enabled",
    "observe",
    "record_device",
    "record_probe",
    "span",
]


@dataclass
class Observability:
    """One tracer + one metrics registry, installed together."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)


#: The installed bundle, or ``None`` (observability off).
_ACTIVE: Observability | None = None


def enable(obs: Observability | None = None) -> Observability:
    """Install ``obs`` (or a fresh bundle) as the active collector."""
    global _ACTIVE
    _ACTIVE = obs if obs is not None else Observability()
    return _ACTIVE


def disable() -> None:
    """Turn observability off; hook points revert to no-ops."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Observability | None:
    """The installed bundle, or ``None`` when off."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


@contextmanager
def enabled(obs: Observability | None = None):
    """Scoped :func:`enable`; restores the previous state on exit."""
    global _ACTIVE
    previous = _ACTIVE
    bundle = obs if obs is not None else Observability()
    _ACTIVE = bundle
    try:
        yield bundle
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# Hook-point helpers.  These are what instrumented pipeline code calls;
# each is a single global read + ``None`` check when observability is
# off (the zero-overhead-when-disabled requirement).
# ----------------------------------------------------------------------

def span(name: str, clock=None, **attrs):
    """Open a span on the active tracer (no-op handle when off).

    ``clock`` is any object with a ``now`` attribute (e.g.
    ``ctx.machine.clock``) used for virtual-time attribution.
    """
    o = _ACTIVE
    if o is None:
        return _NOOP_HANDLE
    return o.tracer.span(name, clock=clock, **attrs)


def count(name: str, n: int | float = 1, **labels) -> None:
    """Increment a counter on the active registry (no-op when off)."""
    o = _ACTIVE
    if o is not None:
        o.metrics.counter(name, **labels).inc(n)


def gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the active registry (no-op when off)."""
    o = _ACTIVE
    if o is not None:
        o.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation (no-op when off)."""
    o = _ACTIVE
    if o is not None:
        o.metrics.histogram(name, **labels).observe(value)


def record_probe(probe) -> None:
    """Flush a probe's accumulated hit count into ``instr.probe_hits``.

    Call after detaching the probe — :class:`repro.instr.probes.Probe`
    counts its own hits, so the hot path needs no extra work.  Flushing
    is delta-based (a side attribute remembers what was already
    counted), so repeated attach/detach cycles never double-count.
    """
    o = _ACTIVE
    if o is None:
        return
    flushed = getattr(probe, "_obs_hits_flushed", 0)
    delta = probe.hits - flushed
    if delta > 0:
        probe._obs_hits_flushed = probe.hits
        o.metrics.counter("instr.probe_hits", probe=probe.label).inc(delta)


def record_device(device) -> None:
    """Flush a simulated GPU's batched scheduling telemetry.

    The simulator's per-operation paths (``Engine.schedule``,
    ``GpuDevice.enqueue``) keep plain counters instead of emitting
    metrics — those two calls run once per device operation and used
    to dominate telemetry cost.  Stage drivers call this once at run
    end to publish the totals: per-engine ``sim.engine_busy_seconds`` /
    ``sim.engine_ops_executed`` gauges and the per-kind
    ``sim.ops_enqueued`` counter.  Counter flushing is delta-based
    (mirroring :func:`record_probe`), so flushing the same device
    twice never double-counts.
    """
    o = _ACTIVE
    if o is None:
        return
    for engine in device.engines.values():
        o.metrics.gauge("sim.engine_busy_seconds",
                        engine=engine.name).set(engine.busy_time)
        o.metrics.gauge("sim.engine_ops_executed",
                        engine=engine.name).set(engine.ops_executed)
    flushed = getattr(device, "_obs_enqueued_flushed", None) or {}
    for kind, total in device.ops_enqueued_by_kind.items():
        delta = total - flushed.get(kind, 0)
        if delta > 0:
            o.metrics.counter("sim.ops_enqueued",
                              kind=kind.name.lower()).inc(delta)
    device._obs_enqueued_flushed = dict(device.ops_enqueued_by_kind)
