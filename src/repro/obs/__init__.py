"""Self-observability for the reproduction's own pipeline.

Diogenes' thesis is *honest measurement*; this package turns that lens
on the tool itself.  It provides

* a structured tracer (:mod:`repro.obs.tracer`) emitting nested spans
  with both wall-time and virtual-time attribution, exportable as
  JSON-lines or a Chrome-trace file (loadable in Perfetto /
  ``chrome://tracing``);
* a metrics registry (:mod:`repro.obs.metrics`) of counters, gauges,
  and histograms, exportable as JSON or Prometheus text format;
* a perturbation ledger (:mod:`repro.obs.ledger`) accounting for the
  tool's own overhead per stage — callbacks, hashing, tracing,
  virtual-clock charges — surfaced as ``meta.overhead`` in exported
  reports;
* a structured event log with flight recorder (:mod:`repro.obs.log`):
  trace-correlated moments in a bounded ring, dumped to disk when a
  stage span closes on an exception;
* a renderer (:mod:`repro.obs.render`) for a human-readable per-stage
  summary table.

Tracing crosses process boundaries: the tracer carries a ``trace_id``
(:mod:`repro.obs.context`), pool workers run their own tracer seeded
with the parent's context, and the executor stitches shipped span
batches into one connected timeline — see ``docs/observability.md``.

Observability is **off by default** and must cost ~nothing when off:
every hook point in the pipeline goes through the module-level helpers
below (:func:`span`, :func:`count`, :func:`gauge`, :func:`observe`),
which reduce to a ``None`` check when no :class:`Observability` bundle
is installed.  Hot paths therefore never build span objects, never
format names, and never touch a dict unless someone asked for
telemetry.

Typical use::

    import repro.obs as obs

    session = obs.enable()                 # install a live bundle
    try:
        report = Diogenes(workload).run()
    finally:
        obs.disable()
    session.tracer.write_chrome_trace("trace.json")
    session.metrics.write_prometheus("metrics.prom")

or, scoped::

    with obs.enabled() as session:
        Diogenes(workload).run()

See ``docs/observability.md`` for naming conventions and exporter
formats.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.ledger import PerturbationLedger
from repro.obs.log import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import _NOOP_HANDLE, Span, Tracer

__all__ = [
    "Observability",
    "active",
    "active_ledger",
    "count",
    "disable",
    "enable",
    "enabled",
    "event",
    "gauge",
    "is_enabled",
    "observe",
    "record_collection",
    "record_device",
    "record_intern_tables",
    "record_probe",
    "span",
]


def _default_ledger() -> PerturbationLedger:
    # Calibration is deferred to first use (see record_probe): a bundle
    # created just to collect metrics must not pay two timing loops.
    return PerturbationLedger(calibrate=False)


@dataclass
class Observability:
    """One tracer + metrics registry + ledger + event log, installed
    together as a session.

    ``flight_dir``, when set, arms the flight recorder: a stage span
    closing on an exception dumps the event ring there as JSONL.
    """

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    ledger: PerturbationLedger = field(default_factory=_default_ledger)
    log: EventLog = field(default_factory=EventLog)
    flight_dir: str | None = None

    def __post_init__(self) -> None:
        self.tracer.on_span_error = self._on_span_error

    def _on_span_error(self, span: Span, exc: BaseException) -> None:
        """Span-error hook: log the failure, dump the flight ring."""
        self.log.emit("span.error", trace_id=self.tracer.trace_id,
                      span_id=span.span_id, span=span.name,
                      error=type(exc).__name__)
        if self.flight_dir is not None and span.name.startswith("stage."):
            os.makedirs(self.flight_dir, exist_ok=True)
            path = os.path.join(
                self.flight_dir,
                f"flight-{self.tracer.trace_id}-{span.span_id}.jsonl")
            self.log.dump(path)


#: The installed bundle, or ``None`` (observability off).
_ACTIVE: Observability | None = None

#: Per-thread scoped override (see :func:`enabled`).  A scoped bundle
#: is visible only to the thread that entered the scope: the service
#: daemon runs each job under a job-local collector in a worker thread
#: while its HTTP loop keeps recording metrics on the process session,
#: and neither may clobber the other mid-span.
_SCOPED = threading.local()


def enable(obs: Observability | None = None) -> Observability:
    """Install ``obs`` (or a fresh bundle) as the process-wide collector."""
    global _ACTIVE
    _ACTIVE = obs if obs is not None else Observability()
    return _ACTIVE


def disable() -> None:
    """Turn observability off; hook points revert to no-ops.

    Clears the process-wide session *and* this thread's scoped
    override — a forked pool worker inherits both, and its initializer
    calls this to guarantee a clean slate.
    """
    global _ACTIVE
    _ACTIVE = None
    _SCOPED.obs = None


def active() -> Observability | None:
    """The active bundle (thread-scoped first, then process-wide)."""
    scoped = getattr(_SCOPED, "obs", None)
    return scoped if scoped is not None else _ACTIVE


def is_enabled() -> bool:
    return active() is not None


@contextmanager
def enabled(obs: Observability | None = None):
    """Scoped :func:`enable`, confined to the calling thread.

    Restores the previous state on exit.  The override is thread-local
    on purpose: a traced inline job installs its own collector without
    disconnecting sessions owned by other threads (and without other
    threads' metric traffic landing in the job's trace).
    """
    previous = getattr(_SCOPED, "obs", None)
    bundle = obs if obs is not None else Observability()
    _SCOPED.obs = bundle
    try:
        yield bundle
    finally:
        _SCOPED.obs = previous


# ----------------------------------------------------------------------
# Hook-point helpers.  These are what instrumented pipeline code calls;
# each is a single global read + ``None`` check when observability is
# off (the zero-overhead-when-disabled requirement).
# ----------------------------------------------------------------------

def span(name: str, clock=None, **attrs):
    """Open a span on the active tracer (no-op handle when off).

    ``clock`` is any object with a ``now`` attribute (e.g.
    ``ctx.machine.clock``) used for virtual-time attribution.
    """
    o = active()
    if o is None:
        return _NOOP_HANDLE
    return o.tracer.span(name, clock=clock, **attrs)


def count(name: str, n: int | float = 1, **labels) -> None:
    """Increment a counter on the active registry (no-op when off)."""
    o = active()
    if o is not None:
        o.metrics.counter(name, **labels).inc(n)


def gauge(name: str, value: float, **labels) -> None:
    """Set a gauge on the active registry (no-op when off)."""
    o = active()
    if o is not None:
        o.metrics.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels) -> None:
    """Record a histogram observation (no-op when off)."""
    o = active()
    if o is not None:
        o.metrics.histogram(name, **labels).observe(value)


def event(name: str, **fields) -> None:
    """Emit a structured event, stamped with the current trace context.

    No-op when off; when on, the event lands in the session's ring
    buffer carrying the active ``trace_id`` and innermost open span id,
    so a streamed or flight-dumped event can be joined back to the
    trace that produced it.
    """
    o = active()
    if o is not None:
        ctx = o.tracer.current_context()
        o.log.emit(name, trace_id=ctx.trace_id,
                   span_id=ctx.parent_span_id, **fields)


def active_ledger():
    """The session's perturbation ledger, or ``None`` when off.

    Hot paths that must measure their own cost directly (e.g. stage-3
    payload hashing) check this once per region: a ``None`` means skip
    the ``perf_counter`` pair entirely.
    """
    o = active()
    return o.ledger if o is not None else None


def record_probe(probe, stage: str | None = None) -> None:
    """Flush a probe's accumulated hit count into ``instr.probe_hits``.

    Call after detaching the probe — :class:`repro.instr.probes.Probe`
    counts its own hits, so the hot path needs no extra work.  Flushing
    is delta-based (a side attribute remembers what was already
    counted), so repeated attach/detach cycles never double-count.

    When ``stage`` is given, the flushed hits are also charged to the
    perturbation ledger's ``callbacks`` bucket at the calibrated
    per-fire cost.
    """
    o = active()
    if o is None:
        return
    flushed = getattr(probe, "_obs_hits_flushed", 0)
    delta = probe.hits - flushed
    if delta > 0:
        probe._obs_hits_flushed = probe.hits
        o.metrics.counter("instr.probe_hits", probe=probe.label).inc(delta)
        if stage is not None:
            o.ledger.charge_probe_hits(stage, delta)


def record_collection(stage: str, events: int,
                      engine: str = "columnar") -> None:
    """Charge ``events`` stored records to the ledger's ``record`` bucket.

    Stage drivers call this once at run end with the number of records
    the run stored and which engine stored them; the ledger prices each
    event at the engine's calibrated unit cost (a dataclass build for
    ``"rows"``, a column append for ``"columnar"``).  No-op when off.
    """
    o = active()
    if o is not None:
        o.ledger.charge_record(stage, events, engine)


def record_intern_tables() -> None:
    """Publish the process-wide intern-table sizes as gauges.

    The interner, frame cache, and symbol caches grow monotonically
    with distinct keys seen; these gauges (``instr.intern_entries``,
    labelled by table) let a long-lived worker alert on unbounded
    growth and verify that per-job resets actually shrink the tables.
    No-op when off.
    """
    o = active()
    if o is None:
        return
    from repro.instr.stacks import intern_table_sizes
    for table, size in intern_table_sizes().items():
        o.metrics.gauge("instr.intern_entries", table=table).set(size)


def record_run_overhead(stage: str, machine) -> None:
    """Charge a finished run's modelled instrumentation cost.

    Reads the machine's CPU timeline for the ``"api"`` intervals the
    probes charged to the virtual clock and books them under the
    ledger's ``virtual`` bucket — the simulated seconds the tool cost
    the measured program, per stage.  No-op when off.
    """
    o = active()
    if o is not None:
        o.ledger.charge_virtual(stage, machine)


def record_device(device) -> None:
    """Flush a simulated GPU's batched scheduling telemetry.

    The simulator's per-operation paths (``Engine.schedule``,
    ``GpuDevice.enqueue``) keep plain counters instead of emitting
    metrics — those two calls run once per device operation and used
    to dominate telemetry cost.  Stage drivers call this once at run
    end to publish the totals: per-engine ``sim.engine_busy_seconds`` /
    ``sim.engine_ops_executed`` gauges and the per-kind
    ``sim.ops_enqueued`` counter.  Counter flushing is delta-based
    (mirroring :func:`record_probe`), so flushing the same device
    twice never double-counts.
    """
    o = active()
    if o is None:
        return
    for engine in device.engines.values():
        o.metrics.gauge("sim.engine_busy_seconds",
                        engine=engine.name).set(engine.busy_time)
        o.metrics.gauge("sim.engine_ops_executed",
                        engine=engine.name).set(engine.ops_executed)
    flushed = getattr(device, "_obs_enqueued_flushed", None) or {}
    for kind, total in device.ops_enqueued_by_kind.items():
        delta = total - flushed.get(kind, 0)
        if delta > 0:
            o.metrics.counter("sim.ops_enqueued",
                              kind=kind.name.lower()).inc(delta)
    device._obs_enqueued_flushed = dict(device.ops_enqueued_by_kind)
