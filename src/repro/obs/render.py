"""Human-readable rendering of one observability session.

``render_stage_summary`` prints the per-stage table the CLI shows
under ``--verbose-stages``: one row per pipeline stage span, with the
tool's wall time, the simulated machine's virtual time, and the
attributes each stage attached (event counts, probe hits, ...).
``render_metrics`` dumps every metric series, one per line.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Tracer

#: Span-name prefix every pipeline stage driver uses (see
#: docs/observability.md, "Naming conventions").
STAGE_PREFIX = "stage."


def _attrs_text(attrs: dict) -> str:
    return "  ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_stage_summary(tracer: Tracer) -> str:
    """The per-stage summary table for one traced pipeline run."""
    stages = tracer.find(STAGE_PREFIX)
    if not stages:
        return "no stage spans recorded (was observability enabled for the run?)"
    rows = []
    total_wall = 0.0
    total_virtual = 0.0
    for sp in stages:
        virtual = sp.virtual_duration
        total_wall += sp.wall_duration
        total_virtual += virtual or 0.0
        rows.append((
            sp.name[len(STAGE_PREFIX):],
            f"{sp.wall_duration * 1e3:10.2f}",
            f"{virtual:12.6f}" if virtual is not None else f"{'-':>12}",
            _attrs_text(sp.attrs),
        ))
    header = (f"{'stage':<22} {'wall ms':>10} {'virtual s':>12}   detail")
    lines = [header, "-" * max(72, len(header))]
    lines += [f"{name:<22} {wall} {virtual}   {detail}"
              for name, wall, virtual, detail in rows]
    lines.append("-" * max(72, len(header)))
    lines.append(f"{'total':<22} {total_wall * 1e3:10.2f} "
                 f"{total_virtual:12.6f}")
    return "\n".join(lines)


def render_metrics(metrics: MetricsRegistry) -> str:
    """Every metric series, one aligned line each."""
    if not len(metrics):
        return "no metrics recorded"
    lines = []
    for metric in metrics:
        labels = ",".join(f"{k}={v}" for k, v in metric.labels)
        series = f"{metric.name}{{{labels}}}" if labels else metric.name
        if isinstance(metric, Histogram):
            mean = metric.sum / metric.count if metric.count else 0.0
            value = (f"count={metric.count} sum={metric.sum:.6g} "
                     f"mean={mean:.6g}")
        else:
            v = metric.value
            value = str(int(v)) if float(v).is_integer() else f"{v:.6g}"
        lines.append(f"{series:<52} {value}")
    return "\n".join(lines)


def render_session(tracer: Tracer, metrics: MetricsRegistry) -> str:
    """Stage table + metrics dump, the full ``--verbose-stages`` block."""
    return (render_stage_summary(tracer)
            + "\n\nmetrics\n" + "-" * 72 + "\n"
            + render_metrics(metrics))
