"""Human-readable rendering of one observability session.

``render_stage_summary`` prints the per-stage table the CLI shows
under ``--verbose-stages``: one row per pipeline stage span, with the
tool's wall time, the simulated machine's virtual time, and the
attributes each stage attached (event counts, probe hits, ...).  Pass
the session's perturbation ledger to add a ``tool ms`` column — the
tool's own measured cost per stage.  ``render_metrics`` dumps every
metric series, one per line (histograms with p50/p95/max), and
``render_overhead_ledger`` is the table behind ``diogenes overhead``.
"""

from __future__ import annotations

from repro.obs.ledger import BUCKETS, PerturbationLedger
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracer import Tracer

#: Span-name prefix every pipeline stage driver uses (see
#: docs/observability.md, "Naming conventions").
STAGE_PREFIX = "stage."


def _attrs_text(attrs: dict) -> str:
    return "  ".join(f"{k}={v}" for k, v in sorted(attrs.items()))


def render_stage_summary(tracer: Tracer,
                         ledger: PerturbationLedger | None = None) -> str:
    """The per-stage summary table for one traced pipeline run.

    With a ledger, each row also shows ``tool ms`` — the wall-clock
    cost the tool's own bookkeeping (callbacks, hashing, tracing)
    charged against that stage.
    """
    stages = tracer.find(STAGE_PREFIX)
    if not stages:
        return "no stage spans recorded (was observability enabled for the run?)"
    ledger_stages = set(ledger.stages()) if ledger is not None else set()
    rows = []
    total_wall = 0.0
    total_virtual = 0.0
    total_tool = 0.0
    for sp in stages:
        virtual = sp.virtual_duration
        total_wall += sp.wall_duration
        total_virtual += virtual or 0.0
        name = sp.name[len(STAGE_PREFIX):]
        if name in ledger_stages:
            tool_s = ledger.stage_wall_seconds(name)
            total_tool += tool_s
            tool = f"{tool_s * 1e3:10.3f}"
        else:
            tool = f"{'-':>10}"
        rows.append((
            name,
            f"{sp.wall_duration * 1e3:10.2f}",
            f"{virtual:12.6f}" if virtual is not None else f"{'-':>12}",
            tool,
            _attrs_text(sp.attrs),
        ))
    header = f"{'stage':<22} {'wall ms':>10} {'virtual s':>12}"
    if ledger is not None:
        header += f" {'tool ms':>10}"
    header += "   detail"
    width = max(72, len(header))
    lines = [header, "-" * width]
    for name, wall, virtual, tool, detail in rows:
        row = f"{name:<22} {wall} {virtual}"
        if ledger is not None:
            row += f" {tool}"
        lines.append(row + f"   {detail}")
    lines.append("-" * width)
    total = f"{'total':<22} {total_wall * 1e3:10.2f} {total_virtual:12.6f}"
    if ledger is not None:
        total += f" {total_tool * 1e3:10.3f}"
    lines.append(total)
    return "\n".join(lines)


def render_metrics(metrics: MetricsRegistry) -> str:
    """Every metric series, one aligned line each."""
    if not len(metrics):
        return "no metrics recorded"
    lines = []
    for metric in metrics:
        labels = ",".join(f"{k}={v}" for k, v in metric.labels)
        series = f"{metric.name}{{{labels}}}" if labels else metric.name
        if isinstance(metric, Histogram):
            mean = metric.sum / metric.count if metric.count else 0.0
            value = (f"count={metric.count} sum={metric.sum:.6g} "
                     f"mean={mean:.6g}")
            if metric.count:
                value += (f" p50={metric.quantile(0.5):.6g}"
                          f" p95={metric.quantile(0.95):.6g}"
                          f" max={metric.max:.6g}")
        else:
            v = metric.value
            value = str(int(v)) if float(v).is_integer() else f"{v:.6g}"
        lines.append(f"{series:<52} {value}")
    return "\n".join(lines)


#: Ledger buckets reported in wall milliseconds (``virtual`` is in
#: simulated seconds and gets its own column).
_WALL_BUCKETS = tuple(b for b in BUCKETS if b != "virtual")


def render_overhead_ledger(overhead: dict) -> str:
    """The perturbation-ledger table (``diogenes overhead`` view).

    Takes the ``meta.overhead`` dict of an exported report — which is
    :meth:`repro.obs.ledger.PerturbationLedger.as_json` — and renders
    per-stage tool cost split by bucket, the simulator's virtual
    instrumentation charge, and the calibration constants behind the
    per-event estimates so the numbers can be audited, not just read.
    """
    stages = overhead.get("stages") or {}
    if not stages:
        return ("no overhead recorded (export a report with --json while "
                "observability is on, e.g. with --trace-out)")
    header = (f"{'stage':<22}"
              + "".join(f" {b + ' ms':>13}" for b in _WALL_BUCKETS)
              + f" {'virtual s':>12} {'events':>8}")
    width = max(72, len(header))
    lines = [header, "-" * width]
    totals = {b: 0.0 for b in BUCKETS}
    total_events = 0
    for stage in sorted(stages):
        accounts = stages[stage]
        row = f"{stage:<22}"
        events = 0
        for bucket in _WALL_BUCKETS:
            cell = accounts.get(bucket) or {}
            seconds = cell.get("seconds", 0.0)
            totals[bucket] += seconds
            events += cell.get("events", 0)
            row += f" {seconds * 1e3:13.3f}"
        virtual = (accounts.get("virtual") or {}).get("seconds", 0.0)
        totals["virtual"] += virtual
        total_events += events
        lines.append(row + f" {virtual:12.6f} {events:8d}")
    lines.append("-" * width)
    lines.append(f"{'total':<22}"
                 + "".join(f" {totals[b] * 1e3:13.3f}"
                           for b in _WALL_BUCKETS)
                 + f" {totals['virtual']:12.6f} {total_events:8d}")
    calibration = overhead.get("calibration") or {}
    if calibration:
        lines.append("")
        lines.append(
            "calibration: probe fire "
            f"{calibration.get('probe_fire_seconds', 0.0) * 1e9:.0f} ns, "
            f"span {calibration.get('span_seconds', 0.0) * 1e9:.0f} ns "
            f"({calibration.get('iterations', 0)} iterations)")
    return "\n".join(lines)


def render_session(tracer: Tracer, metrics: MetricsRegistry,
                   ledger: PerturbationLedger | None = None) -> str:
    """Stage table + metrics dump, the full ``--verbose-stages`` block."""
    block = (render_stage_summary(tracer, ledger)
             + "\n\nmetrics\n" + "-" * 72 + "\n"
             + render_metrics(metrics))
    if ledger is not None and ledger.stages():
        block += ("\n\noverhead (tool self-measurement)\n" + "-" * 72 + "\n"
                  + render_overhead_ledger(ledger.as_json()))
    return block
