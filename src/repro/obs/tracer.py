"""Structured tracing: nested spans with wall- and virtual-time.

A :class:`Span` covers one named region of pipeline work (a stage, a
workload run, an export).  Spans nest: the tracer keeps an open-span
stack, so a span started while another is open becomes its child.
Each span records

* **wall time** — ``time.perf_counter`` seconds relative to the
  tracer's epoch: what the *tool* spent, instrumentation included;
* **virtual time** — optionally, the simulated clock at entry/exit
  (pass any object with a ``now`` attribute, e.g.
  ``ctx.machine.clock``): what the *simulated machine* spent;
* **attributes** — arbitrary JSON-serialisable key/values attached at
  open time or via :meth:`Span.set`.

Distributed traces
------------------
Every tracer carries a ``trace_id`` (:mod:`repro.obs.context`).  A
worker process runs its own tracer seeded with the parent's trace id
and a reserved span-id block (:meth:`Tracer.reserve_ids`), exports its
finished spans as a batch (:meth:`Tracer.export_batch`), and the
parent stitches them back with :meth:`Tracer.adopt` — rebasing wall
times onto its own epoch (``perf_counter`` is ``CLOCK_MONOTONIC`` and
therefore comparable across processes on one machine) and linking the
shipped roots under a parent span.  The result is one connected
timeline: a single root, every worker span reachable from it, span
ids unique.

Exporters
---------
``write_jsonl`` emits one JSON object per line per span (append-
friendly, greppable).  ``write_chrome_trace`` emits the Chrome trace
"JSON object format" loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: wall-time spans appear under the process named
``wall time`` and virtual-time spans under ``virtual time``, so the
two timelines can be compared side by side.  Spans adopted from a
worker keep that worker's pid as their thread id, with a
``thread_name`` metadata row per worker, so a ``--jobs 4`` fan-out
reads as four labelled worker lanes.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from functools import wraps
from typing import Any, Callable

from repro.obs.context import SpanContext, new_trace_id

#: Fixed keys of a span's uniform wire row (see :meth:`Span.to_row`).
_ROW_KEYS = ("name", "span_id", "parent_id", "depth", "wall_start",
             "wall_end", "virtual_start", "virtual_end", "attrs", "pid")


@dataclass
class Span:
    """One finished or in-flight traced region."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    #: Wall seconds since the tracer's epoch.
    wall_start: float
    wall_end: float | None = None
    #: Virtual (simulated) seconds, when a clock was supplied.
    virtual_start: float | None = None
    virtual_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Pid of the process that recorded the span; ``None`` for spans
    #: recorded locally, set on spans adopted from a worker.
    pid: int | None = None

    @property
    def wall_duration(self) -> float:
        if self.wall_end is None:
            raise RuntimeError(f"span {self.name!r} still open")
        return self.wall_end - self.wall_start

    @property
    def virtual_duration(self) -> float | None:
        if self.virtual_start is None or self.virtual_end is None:
            return None
        return self.virtual_end - self.virtual_start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def to_json(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }
        if self.virtual_start is not None:
            out["virtual_start"] = self.virtual_start
            out["virtual_end"] = self.virtual_end
        if self.attrs:
            out["attrs"] = self.attrs
        if self.pid is not None:
            out["pid"] = self.pid
        return out

    def to_row(self) -> dict:
        """Uniform-key row for columnar batch export.

        Unlike :meth:`to_json` (which omits empty fields for
        greppability), every row has the same keys in the same order —
        the eligibility condition of
        :func:`repro.exec.columnar.encode_records`.
        """
        return {key: getattr(self, key) for key in _ROW_KEYS}

    @classmethod
    def from_row(cls, row: dict) -> "Span":
        sp = cls(**{key: row[key] for key in _ROW_KEYS})
        # Decoded batches may share pooled attr dicts between rows
        # (columnar dictionary encoding); give each span its own.
        sp.attrs = dict(sp.attrs)
        return sp


class _SpanHandle:
    """Context manager opening/closing one span on a tracer."""

    __slots__ = ("_tracer", "_span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span, clock) -> None:
        self._tracer = tracer
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span, self._clock)
        if exc_type is not None and self._tracer.on_span_error is not None:
            self._tracer.on_span_error(self._span, exc)


class _NoopHandle:
    """Shared do-nothing handle returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NoopSpan:
    """Absorbs attribute writes so call sites need no enabled-check."""

    __slots__ = ()

    wall_duration = 0.0
    virtual_duration = None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def attrs(self) -> dict:
        # A fresh throwaway dict: writes land nowhere, by design.
        return {}


_NOOP_SPAN = _NoopSpan()
_NOOP_HANDLE = _NoopHandle()


class Tracer:
    """Collects spans for one observability session (single-threaded,
    like the simulated machine itself).

    ``trace_id`` stamps every export of this tracer; pass the parent's
    to a worker-side tracer so the batches stitch.  ``id_base`` offsets
    span-id allocation — a worker starts at the base of a block the
    parent reserved, so stitched ids never collide.
    """

    def __init__(self, trace_id: str | None = None, id_base: int = 0) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._open: list[Span] = []
        self._next_id = id_base + 1
        #: Invoked as ``fn(span, exc)`` when a span closes on an
        #: exception — the flight-recorder trigger (wired by
        #: :class:`repro.obs.Observability`).
        self.on_span_error: Callable[[Span, BaseException], None] | None = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, clock=None, **attrs: Any) -> _SpanHandle:
        """Open a child span of the innermost open span.

        Use as a context manager::

            with tracer.span("stage.stage1_baseline", clock=clk) as sp:
                ...
                sp.set(sync_sites=12)
        """
        parent = self._open[-1] if self._open else None
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._open),
            wall_start=time.perf_counter() - self.epoch,
            virtual_start=clock.now if clock is not None else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._open.append(sp)
        return _SpanHandle(self, sp, clock)

    def _close(self, sp: Span, clock) -> None:
        sp.wall_end = time.perf_counter() - self.epoch
        if clock is not None:
            sp.virtual_end = clock.now
        # Spans close LIFO under normal use; tolerate (and close) any
        # children a misbehaving caller left open.
        while self._open:
            top = self._open.pop()
            if top is sp:
                break
            top.wall_end = sp.wall_end
        self.spans.append(sp)

    def trace(self, name: str | None = None):
        """Decorator form: trace every call of the wrapped function."""
        def decorate(fn):
            span_name = name if name is not None else fn.__qualname__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    # ------------------------------------------------------------------
    # Distributed stitching
    # ------------------------------------------------------------------
    def reserve_ids(self, count: int) -> int:
        """Reserve a block of ``count`` span ids; returns its base.

        The parent tracer skips past the block, the holder mints ids
        from within it — uniqueness across the stitched trace without
        any cross-process coordination.
        """
        base = self._next_id
        self._next_id += count
        return base

    def current_context(self) -> SpanContext:
        """Portable context pointing at the innermost open span."""
        parent = self._open[-1] if self._open else None
        return SpanContext(
            trace_id=self.trace_id,
            parent_span_id=parent.span_id if parent else None,
        )

    def export_batch(self, pid: int | None = None) -> dict:
        """Finished spans as one portable batch (see :meth:`adopt`).

        ``epoch`` ships the tracer's raw ``perf_counter`` origin so the
        adopting tracer can rebase wall times; ``pid`` labels the batch
        with the recording process.
        """
        return {
            "trace_id": self.trace_id,
            "epoch": self.epoch,
            "pid": pid,
            "spans": [sp.to_row() for sp in self.spans],
        }

    def adopt(self, batch: dict, parent_id: int | None = None,
              base_depth: int = 0) -> list[Span]:
        """Stitch a shipped span batch into this tracer's timeline.

        Wall times are rebased from the batch's epoch onto this
        tracer's (both are ``CLOCK_MONOTONIC`` readings on the same
        machine, so the rebased values land on one comparable axis).
        Shipped roots — spans with no parent inside the batch — are
        linked under ``parent_id``; depths shift by ``base_depth``.
        Returns the adopted spans, already appended to :attr:`spans`.
        """
        delta = batch["epoch"] - self.epoch
        pid = batch.get("pid")
        adopted = []
        for row in batch["spans"]:
            sp = Span.from_row(dict(row))
            sp.wall_start += delta
            if sp.wall_end is not None:
                sp.wall_end += delta
            if sp.parent_id is None:
                sp.parent_id = parent_id
            sp.depth += base_depth
            if sp.pid is None:
                sp.pid = pid
            adopted.append(sp)
        self.spans.extend(adopted)
        return adopted

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, prefix: str) -> list[Span]:
        """Finished spans whose name starts with ``prefix``, in finish order."""
        return [s for s in self.spans if s.name.startswith(prefix)]

    def roots(self) -> list[Span]:
        """Finished spans with no parent."""
        return [s for s in self.spans if s.parent_id is None]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, in span-finish order."""
        return "\n".join(
            json.dumps({"trace_id": self.trace_id, **s.to_json()},
                       sort_keys=True)
            for s in self.spans)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_jsonl())
            if self.spans:
                fp.write("\n")

    def to_chrome_trace(self) -> dict:
        """Chrome trace "JSON object format" (Perfetto-loadable).

        Two process tracks: pid 1 carries wall-time spans, pid 2
        carries virtual-time spans (only spans that were given a
        clock).  Spans recorded locally run on tid 1; spans adopted
        from workers run on a tid equal to the worker's os pid, each
        with a ``thread_name`` metadata row — the fan-out reads as
        labelled parallel lanes of one connected process.
        Timestamps are microseconds; durations of complete
        (``"ph": "X"``) events.
        """
        events: list[dict] = [
            {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
             "args": {"name": "wall time"}},
            {"ph": "M", "pid": 2, "tid": 1, "name": "process_name",
             "args": {"name": "virtual time"}},
        ]
        worker_tids = sorted({sp.pid for sp in self.spans
                              if sp.pid is not None})
        for tid in worker_tids:
            for pid in (1, 2):
                events.append({
                    "ph": "M", "pid": pid, "tid": tid,
                    "name": "thread_name",
                    "args": {"name": f"worker {tid}"},
                })
        for sp in self.spans:
            if sp.wall_end is None:  # pragma: no cover - defensive
                continue
            tid = sp.pid if sp.pid is not None else 1
            args = {"span_id": sp.span_id, **sp.attrs}
            if sp.parent_id is not None:
                args["parent_id"] = sp.parent_id
            events.append({
                "ph": "X", "pid": 1, "tid": tid, "name": sp.name,
                "ts": sp.wall_start * 1e6,
                "dur": sp.wall_duration * 1e6,
                "args": args,
            })
            if sp.virtual_duration is not None:
                events.append({
                    "ph": "X", "pid": 2, "tid": tid, "name": sp.name,
                    "ts": sp.virtual_start * 1e6,
                    "dur": sp.virtual_duration * 1e6,
                    "args": args,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"trace_id": self.trace_id}}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fp:
            json.dump(self.to_chrome_trace(), fp)
