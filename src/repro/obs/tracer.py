"""Structured tracing: nested spans with wall- and virtual-time.

A :class:`Span` covers one named region of pipeline work (a stage, a
workload run, an export).  Spans nest: the tracer keeps an open-span
stack, so a span started while another is open becomes its child.
Each span records

* **wall time** — ``time.perf_counter`` seconds relative to the
  tracer's epoch: what the *tool* spent, instrumentation included;
* **virtual time** — optionally, the simulated clock at entry/exit
  (pass any object with a ``now`` attribute, e.g.
  ``ctx.machine.clock``): what the *simulated machine* spent;
* **attributes** — arbitrary JSON-serialisable key/values attached at
  open time or via :meth:`Span.set`.

Exporters
---------
``write_jsonl`` emits one JSON object per line per span (append-
friendly, greppable).  ``write_chrome_trace`` emits the Chrome trace
"JSON object format" loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: wall-time spans appear under the process named
``wall time`` and virtual-time spans under ``virtual time``, so the
two timelines can be compared side by side.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from functools import wraps
from typing import Any


@dataclass
class Span:
    """One finished or in-flight traced region."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    #: Wall seconds since the tracer's epoch.
    wall_start: float
    wall_end: float | None = None
    #: Virtual (simulated) seconds, when a clock was supplied.
    virtual_start: float | None = None
    virtual_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def wall_duration(self) -> float:
        if self.wall_end is None:
            raise RuntimeError(f"span {self.name!r} still open")
        return self.wall_end - self.wall_start

    @property
    def virtual_duration(self) -> float | None:
        if self.virtual_start is None or self.virtual_end is None:
            return None
        return self.virtual_end - self.virtual_start

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def to_json(self) -> dict:
        out: dict[str, Any] = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
        }
        if self.virtual_start is not None:
            out["virtual_start"] = self.virtual_start
            out["virtual_end"] = self.virtual_end
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class _SpanHandle:
    """Context manager opening/closing one span on a tracer."""

    __slots__ = ("_tracer", "_span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span, clock) -> None:
        self._tracer = tracer
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span, self._clock)


class _NoopHandle:
    """Shared do-nothing handle returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return _NOOP_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class _NoopSpan:
    """Absorbs attribute writes so call sites need no enabled-check."""

    __slots__ = ()

    wall_duration = 0.0
    virtual_duration = None

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    @property
    def attrs(self) -> dict:
        # A fresh throwaway dict: writes land nowhere, by design.
        return {}


_NOOP_SPAN = _NoopSpan()
_NOOP_HANDLE = _NoopHandle()


class Tracer:
    """Collects spans for one observability session (single-threaded,
    like the simulated machine itself)."""

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.spans: list[Span] = []
        self._open: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, clock=None, **attrs: Any) -> _SpanHandle:
        """Open a child span of the innermost open span.

        Use as a context manager::

            with tracer.span("stage.stage1_baseline", clock=clk) as sp:
                ...
                sp.set(sync_sites=12)
        """
        parent = self._open[-1] if self._open else None
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            depth=len(self._open),
            wall_start=time.perf_counter() - self.epoch,
            virtual_start=clock.now if clock is not None else None,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._open.append(sp)
        return _SpanHandle(self, sp, clock)

    def _close(self, sp: Span, clock) -> None:
        sp.wall_end = time.perf_counter() - self.epoch
        if clock is not None:
            sp.virtual_end = clock.now
        # Spans close LIFO under normal use; tolerate (and close) any
        # children a misbehaving caller left open.
        while self._open:
            top = self._open.pop()
            if top is sp:
                break
            top.wall_end = sp.wall_end
        self.spans.append(sp)

    def trace(self, name: str | None = None):
        """Decorator form: trace every call of the wrapped function."""
        def decorate(fn):
            span_name = name if name is not None else fn.__qualname__

            @wraps(fn)
            def wrapper(*args, **kwargs):
                with self.span(span_name):
                    return fn(*args, **kwargs)
            return wrapper
        return decorate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def find(self, prefix: str) -> list[Span]:
        """Finished spans whose name starts with ``prefix``, in finish order."""
        return [s for s in self.spans if s.name.startswith(prefix)]

    # ------------------------------------------------------------------
    # Exporters
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, in span-finish order."""
        return "\n".join(json.dumps(s.to_json(), sort_keys=True)
                         for s in self.spans)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fp:
            fp.write(self.to_jsonl())
            if self.spans:
                fp.write("\n")

    def to_chrome_trace(self) -> dict:
        """Chrome trace "JSON object format" (Perfetto-loadable).

        Two process tracks: pid 1 carries wall-time spans, pid 2
        carries virtual-time spans (only spans that were given a
        clock).  Timestamps are microseconds; durations of complete
        (``"ph": "X"``) events.
        """
        events: list[dict] = [
            {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
             "args": {"name": "wall time"}},
            {"ph": "M", "pid": 2, "tid": 1, "name": "process_name",
             "args": {"name": "virtual time"}},
        ]
        for sp in self.spans:
            if sp.wall_end is None:  # pragma: no cover - defensive
                continue
            args = {"span_id": sp.span_id, **sp.attrs}
            events.append({
                "ph": "X", "pid": 1, "tid": 1, "name": sp.name,
                "ts": sp.wall_start * 1e6,
                "dur": sp.wall_duration * 1e6,
                "args": args,
            })
            if sp.virtual_duration is not None:
                events.append({
                    "ph": "X", "pid": 2, "tid": 1, "name": sp.name,
                    "ts": sp.virtual_start * 1e6,
                    "dur": sp.virtual_duration * 1e6,
                    "args": args,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fp:
            json.dump(self.to_chrome_trace(), fp)
