"""Trace-context propagation across process boundaries.

Diogenes' spans used to stop at the process boundary: a ``--jobs 4``
run fans collection out to pool workers, and whatever those workers
measured about *themselves* vanished with them.  This module carries
the context a remote (or merely out-of-band) tracer needs so its spans
stitch back into one connected timeline:

* a **trace id** — one opaque hex string per run, stamping every span
  of that run, however many processes contributed;
* a **parent span id** — the span the shipped subtree hangs under
  (the executor's ``exec.run`` span, the daemon's ``service.job``
  request span);
* an **id base** — a block of span ids reserved on the parent tracer
  (:meth:`repro.obs.tracer.Tracer.reserve_ids`), so ids minted by a
  worker can never collide with the parent's or another worker's.

A :class:`SpanContext` crosses the boundary as a plain tuple (see
:meth:`to_wire` / :meth:`from_wire`) inside the picklable
:class:`~repro.exec.jobs.StageJob`, mirroring W3C ``traceparent``
propagation in shape while staying JSON/pickle-trivial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Span ids reserved per shipped subtree.  Workers mint ids starting at
#: their block's base; a block far larger than any stage's span count
#: keeps ids collision-free without coordination.
ID_BLOCK = 1_000_000


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (random, never derived from data).

    Trace ids identify *runs of the tool*, not measurement content —
    they deliberately live outside every fingerprint, cache key, and
    report body, so two byte-identical reports still carry distinct
    traces.
    """
    return os.urandom(8).hex()


@dataclass(frozen=True)
class SpanContext:
    """The portable part of an in-flight trace."""

    trace_id: str
    parent_span_id: int | None
    id_base: int = 0

    def to_wire(self) -> tuple:
        """Plain-tuple form carried by picklable job specs."""
        return (self.trace_id, self.parent_span_id, self.id_base)

    @classmethod
    def from_wire(cls, wire) -> "SpanContext | None":
        if wire is None:
            return None
        trace_id, parent_span_id, id_base = wire
        return cls(trace_id=trace_id, parent_span_id=parent_span_id,
                   id_base=int(id_base))
