#!/usr/bin/env python
"""The cumf_als case study, end to end (paper §5.1, Figures 6 & 8).

Walks the exact workflow the paper describes:

1. run Diogenes on the ALS matrix-factorization workload;
2. inspect the 23-operation problematic sequence (Figure 6);
3. use the *subsequence* feature to get a refined estimate for the
   fixable part, entries 10-23 (Figure 8) — no new data collection;
4. apply the paper's fix (hoist the updateTheta temporaries out of the
   training loop) and measure the actual benefit;
5. guard the removed duplicate transfers with write protection, the
   paper's mprotect recipe, and show it fault on a stray store.

Run:  python examples/als_sequence_analysis.py
"""

from repro.apps.cumf_als import CumfAls
from repro.core.diogenes import Diogenes
from repro.core.report import render_sequence, render_subsequence
from repro.core.sequences import subsequence
from repro.hostmem.protection import ProtectionError
from repro.runtime.context import ExecutionContext

ITERATIONS = 12


def main() -> None:
    print("=== 1. Run Diogenes on cumf_als ===\n")
    report = Diogenes(CumfAls(iterations=ITERATIONS)).run()
    analysis = report.analysis
    print(f"baseline execution time: {analysis.execution_time:.3f}s "
          f"(virtual)")
    print(f"problems found: {len(analysis.problems)} dynamic operations")

    print("\n=== 2. The problematic sequence (Figure 6) ===\n")
    seq = report.sequences[0]
    print(render_sequence(report, seq))

    print("\n=== 3. Refined subsequence estimate (Figure 8) ===\n")
    sub = subsequence(analysis, seq, 10, 23)
    print(render_subsequence(report, sub, 10))
    print(f"\n(entries 1-9 would need a structural rework; "
          f"10-23 keep {100 * sub.est_benefit / seq.est_benefit:.0f}% "
          f"of the whole sequence's benefit)")

    print("\n=== 4. Apply the paper's fix and measure ===\n")
    t_orig = CumfAls(iterations=ITERATIONS).uninstrumented_time()
    t_fixed = CumfAls(iterations=ITERATIONS,
                      fix="subsequence").uninstrumented_time()
    actual = t_orig - t_fixed
    print(f"original: {t_orig:.3f}s   fixed: {t_fixed:.3f}s")
    print(f"actual benefit:    {actual:.3f}s "
          f"({100 * actual / t_orig:.2f}% of execution)")
    print(f"Diogenes estimate: {sub.est_benefit:.3f}s "
          f"({analysis.percent(sub.est_benefit):.2f}%)  ->  "
          f"estimate/actual = {sub.est_benefit / actual:.2f}")

    print("\n=== 5. Guarding removed transfers (the mprotect recipe) ===\n")
    ctx = ExecutionContext.create()
    model = ctx.host_array(1024, label="hoisted_model")
    dev = ctx.cudart.cudaMalloc(model.nbytes)
    ctx.cudart.cudaMemcpy(dev, model)     # the now once-only upload
    model.protection.protect()            # mprotect(PROT_READ)
    print("model buffer write-protected after its one-time upload")
    try:
        model.write([3.14])               # a bug writing stale data
    except ProtectionError as exc:
        print(f"stray store correctly faulted: {exc}")
    print("reads still fine:", float(model.read()[0]))


if __name__ == "__main__":
    main()
