#!/usr/bin/env python
"""Quickstart: point Diogenes at a workload, read the verdict.

This is the 5-minute tour: define a small application against the
simulated CUDA runtime, run the five FFM stages, and look at what the
tool says is *recoverable* — not merely what consumed time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.apps.base import Workload
from repro.core.diogenes import Diogenes
from repro.core.jsonio import dumps_report
from repro.core.report import render_full_report


class MyFirstApp(Workload):
    """A small pipeline with one classic mistake.

    Each iteration launches a kernel and *immediately* synchronizes —
    but nothing on the CPU looks at the results until the final
    download.  The per-iteration syncs are pure loss.
    """

    name = "my-first-app"

    def __init__(self, iterations: int = 25):
        self.iterations = iterations

    def run(self, ctx):
        rt = ctx.cudart
        with ctx.frame("main", "my_app.cu", 10):
            dev = rt.cudaMalloc(64 * 1024, label="results")
            out = ctx.host_array(8 * 1024, label="out")
            for i in range(self.iterations):
                with ctx.frame("train_step", "my_app.cu", 20):
                    rt.cudaLaunchKernel(
                        "train_step", 300e-6,
                        writes=[(dev, np.full(8 * 1024, float(i)))])
                with ctx.frame("train_step", "my_app.cu", 22):
                    rt.cudaDeviceSynchronize()   # <- the mistake
                ctx.cpu_work(200e-6, "prepare next batch")
            with ctx.frame("main", "my_app.cu", 30):
                rt.cudaMemcpy(out, dev)          # required: read below
            with ctx.frame("main", "my_app.cu", 31):
                self.checksum = float(out.read().sum())


def main() -> None:
    app = MyFirstApp()
    report = Diogenes(app).run()

    print(render_full_report(report))

    # The numbers the report is built from are programmatically
    # accessible, and everything exports to JSON for other tools.
    top = report.analysis.problems[0]
    print(f"\nTop problem: {top.location()}")
    print(f"  kind:          {top.kind.value}")
    print(f"  est. benefit:  {top.est_benefit * 1e3:.3f} ms "
          f"({report.analysis.percent(top.est_benefit):.1f}% of execution)")

    out_path = "quickstart_report.json"
    with open(out_path, "w") as fp:
        fp.write(dumps_report(report))
    print(f"\nFull JSON report written to {out_path}")

    # A picture of the problem: the CPU lane blocks (w) after every
    # launch while the GPU serializes — the overlap that removing the
    # sync would recover is visible as the idle gaps on compute_0.
    from repro.sim.render import render_timeline

    print("\nTimeline of one (shortened) run:")
    short = MyFirstApp(iterations=4)
    context = short.execute()
    print(render_timeline(context.machine, width=96))


if __name__ == "__main__":
    main()
