#!/usr/bin/env python
"""The cuIBM case study: template folds and the memory-manager fix
(paper §5.1, Figure 7).

The CFD solver's Thrust/Cusp primitives allocate a device temporary
per call and free it on return; every free implicitly synchronizes.
The workflow:

1. run Diogenes; the overview shows a dominant fold on ``cudaFree``;
2. expand the fold — the *folded function* grouping demangles the C++
   symbols and strips template parameters, so every instantiation of
   ``thrust::detail::contiguous_storage<...>`` lands in one row;
3. apply the paper's fix (a reusing memory pool for the temporaries)
   and measure — the actual benefit *exceeds* the estimate because the
   fix also eliminates the cudaMalloc/cudaFuncGetAttributes churn.

Run:  python examples/cuibm_fold_analysis.py
"""

from repro.apps.cuibm import CuIbm
from repro.core.diogenes import Diogenes
from repro.core.grouping import expand_fold
from repro.core.report import render_fold_expansion, render_overview

STEPS, CG_ITERS = 8, 16


def main() -> None:
    print("=== 1. Overview (Figure 7, left) ===\n")
    report = Diogenes(CuIbm(steps=STEPS, cg_iters=CG_ITERS)).run()
    print(render_overview(report))

    print("\n=== 2. Expanding the cudaFree fold (Figure 7, right) ===\n")
    free_fold = next(g for g in report.api_folds if "cudaFree" in g.label)
    print(render_fold_expansion(report, free_fold))

    rows = expand_fold(free_fold)
    print("\nFolded identities (template parameters stripped):")
    for row in rows[:3]:
        print(f"  {row.count:>5} dynamic ops fold into  {row.base_name}")

    print("\n=== 3. The fix: a reusing temporary pool ===\n")
    kw = dict(steps=STEPS, cg_iters=CG_ITERS)
    t_orig = CuIbm(**kw).uninstrumented_time()
    t_fixed = CuIbm(fixed=True, **kw).uninstrumented_time()
    actual = t_orig - t_fixed
    est = rows[0].total_benefit
    analysis = report.analysis

    orig_ctx = CuIbm(**kw).execute()
    fixed_ctx = CuIbm(fixed=True, **kw).execute()
    print(f"cudaMalloc/cudaFree call pairs: "
          f"{orig_ctx.driver.devmem.alloc_count} -> "
          f"{fixed_ctx.driver.devmem.alloc_count}")
    print(f"estimated (contiguous_storage row): {est * 1e3:8.2f} ms "
          f"({analysis.percent(est):.1f}%)")
    print(f"actual after the fix:               {actual * 1e3:8.2f} ms "
          f"({100 * actual / t_orig:.1f}%)")
    print("\nActual > estimate, as in the paper (330s vs 202s): the pool")
    print("also removed the allocation churn, which the synchronization")
    print("estimate never claimed credit for.")


if __name__ == "__main__":
    main()
