#!/usr/bin/env python
"""The FFM pipeline, one stage at a time (paper §3, Figure 1).

``Diogenes(...).run()`` drives everything automatically; this example
instead invokes each stage by hand and prints what it collected, to
make the feed-forward structure tangible: every stage's
instrumentation decisions are driven by the previous stage's data.

Run:  python examples/five_stages_walkthrough.py
"""

from repro.apps.synthetic import DuplicateTransferApp
from repro.core.analysis import analyze
from repro.core.autofix import render_fixes
from repro.core.diogenes import DiogenesConfig, Diogenes
from repro.core.stage1_baseline import run_stage1
from repro.core.stage2_tracing import run_stage2, traced_function_set
from repro.core.stage3_memtrace import run_stage3
from repro.core.stage4_syncuse import run_stage4
from repro.instr.discovery import discover_sync_function


def banner(text: str) -> None:
    print(f"\n{'=' * 68}\n{text}\n{'=' * 68}")


def main() -> None:
    app = DuplicateTransferApp(iterations=6)
    config = DiogenesConfig()

    banner("Stage 0 (prelude): discover the internal sync function")
    evidence = discover_sync_function()
    print("probe tests (never-completing kernel + known sync calls):")
    for trigger, stack in evidence.blocked_in.items():
        print(f"  {trigger:<22} blocked in: {' -> '.join(stack)}")
    print(f"shared internal wait function: {evidence.wait_symbol}")

    banner("Stage 1: baseline measurement")
    stage1 = run_stage1(app, config, evidence)
    print(f"execution time: {stage1.execution_time * 1e3:.3f} ms")
    print(f"synchronizing functions found: "
          f"{stage1.synchronizing_functions}")
    for site in stage1.sync_sites:
        leaf = site.stack.leaf
        print(f"  {site.api_name:<22} x{site.count:<4} "
              f"total wait {site.total_wait * 1e6:8.1f}us   "
              f"at {leaf.file}:{leaf.line}")

    banner("Stage 2: detailed tracing (driven by stage 1's list)")
    print(f"traced set: {sorted(traced_function_set(stage1))}")
    stage2 = run_stage2(app, stage1, config)
    print(f"{len(stage2.events)} operations traced "
          f"({len(stage2.sync_events())} syncs, "
          f"{len(stage2.transfer_events())} transfers); first three:")
    for event in stage2.events[:3]:
        print(f"  #{event.seq} {event.api_name:<14} "
              f"dur {event.duration * 1e6:7.1f}us "
              f"(sync wait {event.sync_wait * 1e6:6.1f}us) "
              f"{event.nbytes} B {event.direction}")

    banner("Stage 3: memory tracing + data hashing (separate runs)")
    memtrace = run_stage3(app, stage1, config, mode="memtrace")
    hashing = run_stage3(app, stage1, config, mode="hashing")
    required = sum(1 for r in memtrace.sync_uses if r.required)
    print(f"memory tracing: {len(memtrace.sync_uses)} syncs observed, "
          f"{required} protect data the CPU actually uses")
    dups = [r for r in hashing.transfer_hashes if r.duplicate]
    print(f"hashing: {len(hashing.transfer_hashes)} payloads hashed, "
          f"{len(dups)} duplicates")
    if dups:
        d = dups[0]
        print(f"  e.g. digest {d.digest[:16]}… retransferred by "
              f"occurrence {d.site.occurrence} "
              f"(first sent at occurrence {d.first_site.occurrence})")
    from repro.core.records import Stage3Data

    stage3 = Stage3Data(execution_time=memtrace.execution_time,
                        sync_uses=memtrace.sync_uses,
                        transfer_hashes=hashing.transfer_hashes)

    banner("Stage 4: sync-use timing (driven by stage 3's instructions)")
    stage4 = run_stage4(app, stage1, stage3, config)
    for record in stage4.first_uses[:3]:
        print(f"  sync occurrence {record.site.occurrence}: first use of "
              f"protected data {record.first_use_delay * 1e6:.1f}us after "
              f"the wait ended")
    if not stage4.first_uses:
        print("  (no required syncs with measurable first-use delays)")

    banner("Stage 5: analysis")
    analysis = analyze(stage1, stage2, stage3, stage4)
    print(f"{len(analysis.problems)} problematic operations, "
          f"{analysis.total_benefit * 1e3:.3f} ms recoverable "
          f"({analysis.percent(analysis.total_benefit):.1f}% of execution)")
    for p in analysis.problems[:4]:
        print(f"  {p.kind.value:<28} {p.location():<44} "
              f"+{p.est_benefit * 1e6:7.1f}us")

    banner("Bonus: the §6 direction — recommended remedies")
    report = Diogenes(app, config).run()
    print(render_fixes(report))


if __name__ == "__main__":
    main()
