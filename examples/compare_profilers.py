#!/usr/bin/env python
"""The honest-tool comparison (paper §5.2, Table 2).

Profiles the Rodinia Gaussian benchmark and the hidden-private-sync
workload with three tools:

* the NVProf-like CUPTI-summary profiler (resource consumption),
* the HPCToolkit-like sampling profiler (resource consumption, with
  its real-world attribution losses inside opaque waits),
* Diogenes (expected *benefit*),

then shows the paper's two punchlines: consumption is not benefit
(94.9% vs 2.2% on cudaThreadSynchronize), and CUPTI-based tools are
blind to the private driver API that vendor libraries use.

Run:  python examples/compare_profilers.py
"""

from repro.apps.rodinia_gaussian import RodiniaGaussian
from repro.apps.synthetic import HiddenPrivateSyncApp
from repro.core.diogenes import Diogenes
from repro.profilers import HpcToolkitProfiler, NvprofProfiler


def banner(text: str) -> None:
    print(f"\n{'=' * 68}\n{text}\n{'=' * 68}")


def profile_block(app_factory) -> None:
    nv = NvprofProfiler(record_limit=None).profile(app_factory())
    hp = HpcToolkitProfiler(period=20e-6).profile(app_factory())
    report = Diogenes(app_factory()).run()
    savings = report.analysis.by_api()
    exec_time = report.analysis.execution_time

    names = [e.name for e in nv.top(6)]
    for name in savings:
        if name not in names:
            names.append(name)

    print(f"{'operation':<26} {'nvprof':>16} {'hpctoolkit':>16} "
          f"{'diogenes est.':>16}")
    for name in names:
        def fmt(entry):
            return (f"{entry.percent:5.1f}% #{entry.rank}"
                    if entry else f"{'-':>9}")

        dio = savings.get(name)
        dio_text = (f"{100 * dio / exec_time:5.1f}%"
                    if dio is not None else f"{'-':>6}")
        print(f"{name:<26} {fmt(nv.entry(name)):>16} "
              f"{fmt(hp.entry(name)):>16} {dio_text:>16}")


def main() -> None:
    banner("Rodinia Gaussian: consumption is not benefit")
    profile_block(lambda: RodiniaGaussian(n=64))
    print("\nNVProf attributes ~90%+ of execution to cudaThreadSynchronize;")
    print("Diogenes knows the app is GPU-bound and reports only a few")
    print("percent as actually recoverable (the paper measured 2.1% after")
    print("deleting the call).")

    banner("Vendor-library workload: the CUPTI blind spot")
    app_factory = lambda: HiddenPrivateSyncApp(iterations=6)  # noqa: E731
    nv = NvprofProfiler(record_limit=None).profile(app_factory())
    hp = HpcToolkitProfiler(period=10e-6).profile(app_factory())
    report = Diogenes(app_factory()).run()

    print("NVProf sees:     ", [e.name for e in nv.top(4)])
    print("HPCToolkit sees: ", [e.name for e in hp.top(4)])
    print("Diogenes sees:   ",
          sorted({p.api_name for p in report.analysis.problems}))
    hidden = [p for p in report.analysis.problems
              if p.api_name.startswith("__priv")]
    print(f"\nDiogenes found {len(hidden)} synchronizations inside the")
    print("proprietary driver path that produced no CUPTI records at all —")
    print("instrumenting the internal wait funnel directly is what makes")
    print("the measurement honest.")


if __name__ == "__main__":
    main()
