"""Unit tests for the dispatch layer and probes."""

import pytest

from repro.driver.dispatch import Dispatcher
from repro.instr.manager import InstrumentationManager
from repro.instr.probes import Probe
from repro.instr.stacks import CallStackTracker
from repro.sim.machine import Machine


@pytest.fixture
def dispatcher():
    d = Dispatcher(Machine(), CallStackTracker())
    d.register_symbol("outer", "runtime")
    d.register_symbol("inner", "driver")
    d.register_symbol("wait", "driver-internal")
    return d


class TestSymbolRegistry:
    def test_unregistered_call_rejected(self, dispatcher):
        with pytest.raises(KeyError):
            dispatcher.call("nope", "runtime", lambda: None)

    def test_conflicting_layer_rejected(self, dispatcher):
        with pytest.raises(ValueError):
            dispatcher.register_symbol("outer", "driver")

    def test_reregistration_same_layer_ok(self, dispatcher):
        dispatcher.register_symbol("outer", "runtime")

    def test_symbols_in_layer(self, dispatcher):
        assert dispatcher.symbols_in_layer("runtime") == ["outer"]
        assert dispatcher.symbols_in_layer("driver", "driver-internal") == \
            ["inner", "wait"]


class TestProbeMatching:
    def test_probe_requires_callback(self):
        with pytest.raises(ValueError):
            Probe({"x"})

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            Probe({"x"}, entry=lambda r: None, overhead_per_hit=-1.0)

    def test_name_matching(self):
        p = Probe({"a", "b"}, entry=lambda r: None)
        assert p.matches("a", "runtime")
        assert not p.matches("c", "runtime")

    def test_wildcard_matches_everything(self):
        p = Probe(None, entry=lambda r: None)
        assert p.matches("anything", "driver-private")

    def test_layer_restriction(self):
        p = Probe(None, entry=lambda r: None, layers={"driver"})
        assert p.matches("x", "driver")
        assert not p.matches("x", "runtime")

    def test_hits_counted_once_per_call(self, dispatcher):
        p = Probe({"outer"}, entry=lambda r: None, exit=lambda r: None)
        dispatcher.attach(p)
        dispatcher.call("outer", "runtime", lambda: None)
        dispatcher.call("outer", "runtime", lambda: None)
        assert p.hits == 2

    def test_exit_only_probe_counts_hits(self, dispatcher):
        p = Probe({"outer"}, exit=lambda r: None)
        dispatcher.attach(p)
        dispatcher.call("outer", "runtime", lambda: None)
        assert p.hits == 1


class TestDispatch:
    def test_returns_impl_result(self, dispatcher):
        assert dispatcher.call("outer", "runtime", lambda: 42) == 42

    def test_records_have_entry_exit_times(self, dispatcher):
        seen = []
        dispatcher.attach(Probe({"outer"}, exit=seen.append))
        machine = dispatcher.machine

        def impl():
            machine.cpu_work(0.5)

        dispatcher.call("outer", "runtime", impl)
        (rec,) = seen
        assert rec.t_exit - rec.t_entry == pytest.approx(0.5)
        assert rec.duration == pytest.approx(0.5)

    def test_nesting_depth_and_parent(self, dispatcher):
        depths = {}

        def entry(rec):
            depths[rec.name] = (rec.depth, rec.parent)

        dispatcher.attach(Probe(None, entry=entry))

        def outer_impl():
            dispatcher.call("inner", "driver", lambda: None)

        dispatcher.call("outer", "runtime", outer_impl)
        assert depths == {"outer": (0, None), "inner": (1, "outer")}

    def test_root_record_is_outermost(self, dispatcher):
        roots = []
        dispatcher.attach(Probe(
            {"inner"}, entry=lambda r: roots.append(
                dispatcher.root_record.name)))
        dispatcher.call(
            "outer", "runtime",
            lambda: dispatcher.call("inner", "driver", lambda: None))
        assert roots == ["outer"]

    def test_publish_attaches_to_current_record(self, dispatcher):
        seen = []
        dispatcher.attach(Probe({"outer"}, exit=seen.append))
        dispatcher.call("outer", "runtime",
                        lambda: dispatcher.publish(marker=7))
        assert seen[0].meta["marker"] == 7

    def test_publish_outside_call_raises(self, dispatcher):
        with pytest.raises(RuntimeError):
            dispatcher.publish(x=1)

    def test_publish_up_reaches_ancestors(self, dispatcher):
        seen = []
        dispatcher.attach(Probe({"outer"}, exit=seen.append))

        def outer_impl():
            dispatcher.call("inner", "driver",
                            lambda: dispatcher.publish_up(nbytes=9))

        dispatcher.call("outer", "runtime", outer_impl)
        assert seen[0].meta["nbytes"] == 9

    def test_stack_snapshot_captured_at_entry(self, dispatcher):
        seen = []
        dispatcher.attach(Probe({"outer"}, entry=seen.append))
        with dispatcher.stacks.frame("app", "a.cpp", 3):
            dispatcher.call("outer", "runtime", lambda: None)
        assert [f.function for f in seen[0].stack] == ["app"]

    def test_detach_stops_probe(self, dispatcher):
        count = []
        probe = dispatcher.attach(Probe({"outer"}, entry=count.append))
        dispatcher.call("outer", "runtime", lambda: None)
        dispatcher.detach(probe)
        dispatcher.call("outer", "runtime", lambda: None)
        assert len(count) == 1

    def test_detach_unknown_raises(self, dispatcher):
        with pytest.raises(KeyError):
            dispatcher.detach(Probe({"x"}, entry=lambda r: None))

    def test_exception_unwinds_frames(self, dispatcher):
        def impl():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            dispatcher.call("outer", "runtime", impl)
        assert dispatcher.current_record is None

    def test_exit_probes_skipped_on_exception(self, dispatcher):
        exits = []
        dispatcher.attach(Probe({"outer"}, exit=exits.append))

        def impl():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            dispatcher.call("outer", "runtime", impl)
        assert exits == []

    def test_dispatch_count(self, dispatcher):
        dispatcher.call("outer", "runtime", lambda: None)
        dispatcher.call("outer", "runtime", lambda: None)
        assert dispatcher.dispatch_count == 2


class TestOverheadCharging:
    def test_fixed_overhead_charged_per_hit(self, dispatcher):
        dispatcher.attach(Probe({"outer"}, entry=lambda r: None,
                                overhead_per_hit=1e-3))
        dispatcher.call("outer", "runtime", lambda: None)
        assert dispatcher.machine.now == pytest.approx(1e-3)

    def test_dynamic_cost_from_callback_return(self, dispatcher):
        dispatcher.attach(Probe({"outer"}, entry=lambda r: 2e-3))
        dispatcher.call("outer", "runtime", lambda: None)
        assert dispatcher.machine.now == pytest.approx(2e-3)

    def test_uninstrumented_call_is_free(self, dispatcher):
        dispatcher.call("outer", "runtime", lambda: None)
        assert dispatcher.machine.now == 0.0

    def test_overhead_precedes_entry_timestamp(self, dispatcher):
        seen = []
        dispatcher.attach(Probe({"outer"}, entry=seen.append,
                                overhead_per_hit=5e-3))
        dispatcher.call("outer", "runtime", lambda: None)
        assert seen[0].t_entry == pytest.approx(5e-3)


class TestInstrumentationManager:
    def test_session_detaches_on_exit(self, dispatcher):
        manager = InstrumentationManager(dispatcher)
        with manager.session():
            manager.attach(Probe({"outer"}, entry=lambda r: None))
            assert dispatcher.probe_count == 1
        assert dispatcher.probe_count == 0

    def test_session_detaches_on_error(self, dispatcher):
        manager = InstrumentationManager(dispatcher)
        with pytest.raises(RuntimeError):
            with manager.session():
                manager.attach(Probe({"outer"}, entry=lambda r: None))
                raise RuntimeError("boom")
        assert dispatcher.probe_count == 0

    def test_detach_single(self, dispatcher):
        manager = InstrumentationManager(dispatcher)
        p = manager.attach(Probe({"outer"}, entry=lambda r: None))
        manager.detach(p)
        assert dispatcher.probe_count == 0
        assert manager.attached == []
