"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.runtime.context import ExecutionContext

try:
    from hypothesis import HealthCheck, settings

    # Two pinned profiles so property-test effort is explicit instead
    # of machine-dependent: `ci` keeps tier-1 fast; `extended` is the
    # nightly fuzz-smoke setting (more examples, no deadline).  Select
    # with HYPOTHESIS_PROFILE=extended; default is `ci`.
    settings.register_profile(
        "ci", max_examples=25, deadline=None, derandomize=True)
    settings.register_profile(
        "extended", max_examples=300, deadline=None,
        suppress_health_check=[HealthCheck.too_slow])
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is a test extra
    pass


@pytest.fixture
def ctx() -> ExecutionContext:
    """A fresh simulated process."""
    return ExecutionContext.create()


@pytest.fixture
def machine(ctx):
    return ctx.machine


@pytest.fixture
def driver(ctx):
    return ctx.driver


@pytest.fixture
def cudart(ctx):
    return ctx.cudart
