"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.runtime.context import ExecutionContext


@pytest.fixture
def ctx() -> ExecutionContext:
    """A fresh simulated process."""
    return ExecutionContext.create()


@pytest.fixture
def machine(ctx):
    return ctx.machine


@pytest.fixture
def driver(ctx):
    return ctx.driver


@pytest.fixture
def cudart(ctx):
    return ctx.cudart
