"""Tests for the persistent analysis service (`repro.service`).

The contracts that keep the daemon honest:

* a fetched report is **byte-identical** to the serial CLI report for
  the same workload/config — the service is a front end, never a
  different measurement;
* a duplicate submission of an unchanged workload is served from the
  report store without executing a single stage job, observably
  (service counters + exec metrics), never silently;
* the job queue survives a daemon crash: jobs found ``running`` at
  startup are requeued and re-executed;
* ``/metrics`` exposes nonzero queue/job counters in Prometheus text.
"""

from __future__ import annotations

import json
import pathlib
import re
import threading
from contextlib import contextmanager

import pytest

import repro.obs as obs
from repro.apps.base import registry
from repro.core.cli import _load_workloads, main
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.jsonio import dumps_report
from repro.exec.fingerprint import config_to_json
from repro.exec.jobs import WorkloadSpec
from repro.service import (
    DONE,
    FAILED,
    RUNNING,
    SUBMITTED,
    JobQueue,
    ReportStore,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    report_identity,
)

_load_workloads()

APP = "synthetic-unnecessary-sync"
PARAMS = {"iterations": 4}

#: Three small independent workloads for the concurrency test.
CONCURRENT_APPS = [
    ("synthetic-unnecessary-sync", {"iterations": 4}),
    ("synthetic-misplaced-sync", {"iterations": 3}),
    ("synthetic-duplicate-transfer", {"iterations": 3, "elements": 2048}),
]

_serial_cache: dict[tuple, str] = {}


def _serial_json(name: str, params: dict) -> str:
    """Reference bytes from the serial CLI path, memoised per app."""
    cache_key = (name, tuple(sorted(params.items())))
    if cache_key not in _serial_cache:
        report = Diogenes(registry.create(name, **params)).run()
        _serial_cache[cache_key] = dumps_report(report)
    return _serial_cache[cache_key]


def _metric_value(text: str, name: str, **labels) -> float | None:
    """Read one sample from Prometheus exposition text."""
    for line in text.splitlines():
        match = re.match(rf"{re.escape(name)}(?:{{(.*)}})? (.+)$", line)
        if not match:
            continue
        found = dict(re.findall(r'(\w+)="([^"]*)"', match.group(1) or ""))
        if all(found.get(k) == str(v) for k, v in labels.items()):
            return float(match.group(2))
    return None


def _metric_sum(text: str, name: str) -> float:
    """Sum of every labelled series of one counter in Prometheus text."""
    return sum(
        float(match.group(1))
        for line in text.splitlines()
        if (match := re.match(rf"{re.escape(name)}(?:{{[^}}]*}})? (.+)$",
                              line)))


@pytest.fixture(autouse=True)
def _observability_reset():
    obs.disable()
    yield
    obs.disable()


@contextmanager
def running_daemon(data_dir, **kwargs):
    daemon = ServiceDaemon(data_dir, **kwargs)
    thread = threading.Thread(target=daemon.run, kwargs={"port": 0},
                              daemon=True)
    thread.start()
    assert daemon.started.wait(10), "daemon failed to start"
    client = ServiceClient(f"http://127.0.0.1:{daemon.bound_port}")
    try:
        yield client, daemon
    finally:
        try:
            client.shutdown()
        except ServiceError:
            pass  # already stopped by the test
        thread.join(15)
        assert not thread.is_alive(), "daemon did not shut down cleanly"


@pytest.fixture
def service(tmp_path):
    with running_daemon(tmp_path / "svc") as (client, daemon):
        yield client, daemon


# ----------------------------------------------------------------------
# Job queue: persistence and crash-safe resume
# ----------------------------------------------------------------------
class TestJobQueue:
    def _submit(self, queue, n=1):
        return [queue.submit(APP, PARAMS, {"cfg": True}, f"key{i}")
                for i in range(n)]

    def test_submit_claim_done_cycle_persists(self, tmp_path):
        queue = JobQueue(tmp_path)
        (job,) = self._submit(queue)
        assert job.state == SUBMITTED and job.id == "job-000001"
        claimed = queue.claim_next()
        assert claimed.id == job.id and claimed.state == RUNNING
        queue.mark_done(claimed, "finalkey")
        # A brand-new instance reads the same state back from disk.
        reloaded = JobQueue(tmp_path)
        assert reloaded.get(job.id).state == DONE
        assert reloaded.get(job.id).report_key == "finalkey"

    def test_claims_are_oldest_first(self, tmp_path):
        queue = JobQueue(tmp_path)
        jobs = self._submit(queue, n=3)
        assert [queue.claim_next().id for _ in range(3)] == \
            [j.id for j in jobs]
        assert queue.claim_next() is None

    def test_running_jobs_requeued_after_crash(self, tmp_path):
        queue = JobQueue(tmp_path)
        self._submit(queue, n=2)
        queue.claim_next()  # job-000001 now "running"; daemon dies here
        survivor = JobQueue(tmp_path)  # simulated restart
        assert survivor.get("job-000001").state == SUBMITTED
        assert survivor.counts() == {SUBMITTED: 2, RUNNING: 0,
                                     DONE: 0, FAILED: 0}
        # The requeued job is claimable again, attempts preserved.
        reclaimed = survivor.claim_next()
        assert reclaimed.id == "job-000001" and reclaimed.attempts == 2

    def test_failed_state_and_error_survive_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        self._submit(queue)
        job = queue.claim_next()
        queue.mark_failed(job, "KeyError: boom")
        reloaded = JobQueue(tmp_path)
        assert reloaded.get(job.id).state == FAILED
        assert reloaded.get(job.id).error == "KeyError: boom"

    def test_sequence_continues_after_restart(self, tmp_path):
        queue = JobQueue(tmp_path)
        self._submit(queue, n=2)
        reloaded = JobQueue(tmp_path)
        job = reloaded.submit(APP, PARAMS, {}, "k")
        assert job.id == "job-000003"

    def test_unreadable_job_file_is_skipped(self, tmp_path):
        queue = JobQueue(tmp_path)
        self._submit(queue)
        (tmp_path / "job-999999.json").write_text("{truncated")
        reloaded = JobQueue(tmp_path)
        assert len(reloaded) == 1

    def test_depth_counts_only_waiting_jobs(self, tmp_path):
        queue = JobQueue(tmp_path)
        self._submit(queue, n=2)
        queue.claim_next()
        assert queue.depth() == 1


# ----------------------------------------------------------------------
# Report store: identity, envelope hygiene, history
# ----------------------------------------------------------------------
class TestReportStore:
    def _identity(self, params=PARAMS, config=None):
        spec = WorkloadSpec.from_params(APP, params)
        return report_identity(spec, config or DiogenesConfig())

    def test_identity_is_stable_and_param_sensitive(self):
        assert self._identity().key() == self._identity().key()
        assert self._identity().key() != \
            self._identity(params={"iterations": 5}).key()
        assert self._identity().key() != self._identity(
            config=DiogenesConfig(tracing_probe_overhead=9e-6)).key()

    def test_put_get_roundtrip_and_history(self, tmp_path):
        store = ReportStore(tmp_path)
        identity = self._identity()
        report = {"schema_version": 1, "workload": APP, "problems": []}
        key = store.put(identity, report, job_id="job-000001")
        assert key == identity.key()
        assert store.get(key) == report
        assert store.contains(key)
        (entry,) = store.history()
        assert entry["workload"] == APP
        assert entry["key"] == key
        assert entry["job_id"] == "job-000001"
        assert entry["schema_version"] == 1

    def test_refuses_unstamped_report(self, tmp_path):
        store = ReportStore(tmp_path)
        with pytest.raises(ValueError, match="schema_version"):
            store.put(self._identity(), {"workload": APP})
        assert len(store) == 0

    def test_foreign_envelope_reads_as_miss(self, tmp_path):
        store = ReportStore(tmp_path)
        key = store.put(self._identity(), {"schema_version": 1})
        path = store._path(key)
        envelope = json.loads(path.read_text())
        envelope["schema"] = -1
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None

    def test_history_filters_by_workload(self, tmp_path):
        store = ReportStore(tmp_path)
        store.put(self._identity(), {"schema_version": 1})
        other = report_identity(
            WorkloadSpec.from_params("synthetic-quiet", {}), DiogenesConfig())
        store.put(other, {"schema_version": 1})
        assert len(store.history()) == 2
        assert [e["workload"] for e in store.history("synthetic-quiet")] == \
            ["synthetic-quiet"]

    def test_truncated_history_line_is_skipped(self, tmp_path):
        store = ReportStore(tmp_path)
        store.put(self._identity(), {"schema_version": 1})
        with open(store.history_path, "a") as fp:
            fp.write('{"seq": 1, "workload":')  # crash mid-append
        assert len(store.history()) == 1


# ----------------------------------------------------------------------
# Daemon integration
# ----------------------------------------------------------------------
class TestDaemonRoundTrip:
    def test_fetched_report_is_byte_identical_to_serial_cli(self, service):
        client, _ = service
        serial = _serial_json(APP, PARAMS)
        job = client.submit(APP, PARAMS)["job"]
        job = client.wait(job["id"])
        fetched = client.report(job["report_key"])
        assert json.dumps(fetched, indent=2) == serial

    def test_duplicate_submission_served_from_store(self, service):
        client, _ = service
        first = client.submit(APP, PARAMS)
        assert first["cached"] is False
        client.wait(first["job"]["id"])
        executed_before = _metric_sum(client.metrics(),
                                      "repro_exec_jobs_executed")
        assert executed_before > 0  # the first run did execute stages

        second = client.submit(APP, PARAMS)
        assert second["cached"] is True
        assert second["job"]["state"] == DONE  # born done, never queued
        assert second["job"]["report_key"] == first["job"]["report_key"]
        metrics = client.metrics()
        assert _metric_value(metrics, "repro_service_store_hits") == 1
        executed_after = _metric_sum(metrics, "repro_exec_jobs_executed")
        assert executed_after == executed_before, \
            "a store-served submission must not execute any stage job"
        # And the two reports are literally the same stored bytes.
        assert client.report(second["job"]["report_key"]) == \
            client.report(first["job"]["report_key"])

    def test_concurrent_submissions_match_serial(self, tmp_path):
        # Reference bytes first (obs off, no daemon in the process yet).
        serial = {name: _serial_json(name, params)
                  for name, params in CONCURRENT_APPS}
        with running_daemon(tmp_path / "svc", workers=3) as (client, _):
            submitted = [client.submit(name, params)["job"]
                         for name, params in CONCURRENT_APPS]
            finished = [client.wait(job["id"]) for job in submitted]
            for (name, _params), job in zip(CONCURRENT_APPS, finished):
                fetched = client.report(job["report_key"])
                assert json.dumps(fetched, indent=2) == serial[name], name

    def test_queue_survives_daemon_kill_and_restart(self, tmp_path):
        data_dir = tmp_path / "svc"
        config = DiogenesConfig()
        spec = WorkloadSpec.from_params(APP, PARAMS)
        key = report_identity(spec, config).key()
        # Simulate a daemon that died mid-job: the queue directory holds
        # one job stuck in "running" state.
        queue = JobQueue(data_dir / "queue")
        job = queue.submit(APP, PARAMS, config_to_json(config), key)
        queue.claim_next()
        assert queue.get(job.id).state == RUNNING
        del queue

        with running_daemon(data_dir) as (client, _):
            finished = client.wait(job.id)
        assert finished["state"] == DONE
        assert finished["attempts"] == 2  # the crashed claim + the re-run
        assert json.dumps(ReportStore(data_dir / "store").get(key),
                          indent=2) == _serial_json(APP, PARAMS)

    def test_metrics_exposes_nonzero_queue_and_job_counters(self, service):
        client, _ = service
        client.wait(client.submit(APP, PARAMS)["job"]["id"])
        metrics = client.metrics()
        assert _metric_value(metrics, "repro_service_jobs",
                             state="done") == 1
        assert _metric_value(metrics, "repro_service_jobs_submitted",
                             workload=APP) == 1
        assert _metric_value(metrics, "repro_service_queue_depth") == 0
        assert _metric_value(metrics, "repro_service_store_reports") == 1
        assert _metric_value(metrics, "repro_service_requests",
                             route="submit", status="200") == 1
        # The pipeline's own counters flow through the same registry.
        assert "repro_exec_jobs_executed" in metrics

    def test_health_and_history_endpoints(self, service):
        client, _ = service
        assert client.health()["status"] == "ok"
        client.wait(client.submit(APP, PARAMS)["job"]["id"])
        history = client.history()
        assert [e["workload"] for e in history] == [APP]
        assert client.history("no-such-workload") == []
        assert client.health()["jobs"]["done"] == 1

    def test_failed_job_reports_its_error(self, service):
        client, daemon = service
        # Bad params are normally rejected at submit time; enqueue a
        # poisoned job directly so a *worker* hits the failure path.
        bad = daemon.queue.submit("synthetic-quiet", {"bogus_arg": 1},
                                  config_to_json(DiogenesConfig()), "k")
        with pytest.raises(ServiceError, match="failed"):
            client.wait(bad.id, timeout=30)
        final = client.job(bad.id)
        assert final["state"] == FAILED
        assert "TypeError" in final["error"]


class TestTraceAndEvents:
    """Distributed traces and the live event stream (`/trace`, `/events`)."""

    def test_executed_job_stores_a_connected_trace(self, service):
        client, _ = service
        job = client.wait(client.submit(APP, PARAMS)["job"]["id"])
        trace = client.trace(job["id"])
        assert trace["job_id"] == job["id"]
        spans = trace["spans"]
        roots = [sp for sp in spans if sp.get("parent_id") is None]
        assert [sp["name"] for sp in roots] == ["service.job"]
        assert roots[0]["attrs"]["job"] == job["id"]
        # Every span reachable from the request span: one tree.
        by_id = {sp["span_id"]: sp for sp in spans}
        for sp in spans:
            node = sp
            while node.get("parent_id") is not None:
                node = by_id[node["parent_id"]]
            assert node["name"] == "service.job"
        stage_names = {sp["name"] for sp in spans
                       if sp["name"].startswith("stage.")}
        assert "stage.stage1_baseline" in stage_names
        chrome = trace["chrome_trace"]
        assert chrome["otherData"]["trace_id"] == trace["trace_id"]
        assert any(e.get("ph") == "X" for e in chrome["traceEvents"])

    def test_store_served_job_has_no_trace(self, service):
        client, _ = service
        client.wait(client.submit(APP, PARAMS)["job"]["id"])
        cached = client.submit(APP, PARAMS)["job"]
        with pytest.raises(ServiceError, match="no trace stored") as info:
            client.trace(cached["id"])
        assert info.value.status == 404

    def test_events_stream_reaches_done(self, service):
        client, _ = service
        job = client.submit(APP, PARAMS)["job"]
        collected, after = [], 0
        for _ in range(100):
            resp = client.events(job["id"], after=after, timeout=5)
            collected += resp["events"]
            after = resp["last_seq"]
            if resp["done"]:
                break
        names = [e["event"] for e in collected]
        assert names[0] == "job.submitted"
        assert "job.running" in names and names[-1] == "job.done"
        stage_events = [e for e in collected if e["event"] == "stage.done"]
        assert len(stage_events) == 5  # one per stage run
        assert {e["stage"] for e in stage_events} == {
            "stage1", "stage2", "stage3_memtrace", "stage3_hashing",
            "stage4"}
        assert all(e["seq"] > 0 for e in collected)
        assert resp["state"] == DONE
        # The trace and the stream agree on the trace id.
        (running,) = [e for e in collected if e["event"] == "job.running"]
        assert client.trace(job["id"])["trace_id"] == running["trace_id"]

    def test_events_long_poll_returns_empty_on_timeout(self, service):
        client, _ = service
        job = client.wait(client.submit(APP, PARAMS)["job"]["id"])
        resp = client.events(job["id"], after=10_000, timeout=0.2)
        assert resp["events"] == [] and resp["done"] is True

    def test_events_validation(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="job=") as info:
            client._request("GET", "/events")
        assert info.value.status == 400
        with pytest.raises(ServiceError, match="no such job") as info:
            client.events("job-424242")
        assert info.value.status == 404
        client.submit(APP, PARAMS)
        with pytest.raises(ServiceError, match="bad events query") as info:
            client._request("GET", "/events?job=job-000001&after=nope")
        assert info.value.status == 400

    def test_failed_job_dumps_flight_recording(self, service, tmp_path):
        client, daemon = service
        bad = daemon.queue.submit("synthetic-quiet", {"bogus_arg": 1},
                                  config_to_json(DiogenesConfig()), "k")
        with pytest.raises(ServiceError, match="failed"):
            client.wait(bad.id, timeout=30)
        flight = pathlib.Path(daemon.data_dir) / "flight" / f"{bad.id}.jsonl"
        assert flight.is_file()
        events = [json.loads(li)
                  for li in flight.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert "job.running" in names and "job.failed" in names
        (failed,) = [e for e in events if e["event"] == "job.failed"]
        assert "TypeError" in failed["error"]
        assert all("trace_id" in e for e in events)

    def test_tail_cli_streams_to_done(self, service, capsys):
        client, _ = service
        job = client.submit(APP, PARAMS)["job"]
        assert main(["tail", job["id"], "--url", client.base_url]) == 0
        captured = capsys.readouterr()
        assert "job.running" in captured.out
        assert "stage.done" in captured.out
        assert "job.done" in captured.out
        assert f"job {job['id']} done" in captured.err

    def test_tail_cli_exit_code_on_failed_job(self, service, capsys):
        client, daemon = service
        bad = daemon.queue.submit("synthetic-quiet", {"bogus_arg": 1},
                                  config_to_json(DiogenesConfig()), "k")
        assert main(["tail", bad.id, "--url", client.base_url]) == 1
        assert "job.failed" in capsys.readouterr().out

    def test_fetch_trace_out_cli(self, service, tmp_path, capsys):
        client, _ = service
        job = client.wait(client.submit(APP, PARAMS)["job"]["id"])
        out = tmp_path / "trace.json"
        assert main(["fetch", job["id"], "--url", client.base_url,
                     "--out", str(tmp_path / "r.json"),
                     "--trace-out", str(out)]) == 0
        assert "trace written" in capsys.readouterr().err
        chrome = json.loads(out.read_text())
        assert {e["name"] for e in chrome["traceEvents"]
                if e.get("ph") == "X"} >= {"service.job", "exec.run"}
        # A report key is not a job id: refuse rather than guess.
        with pytest.raises(SystemExit, match="job id"):
            main(["fetch", job["report_key"], "--url", client.base_url,
                  "--trace-out", str(out)])


class TestStreamingAndDashboard:
    def _collect_events(self, client, job_id, max_polls=100):
        collected, after = [], 0
        for _ in range(max_polls):
            resp = client.events(job_id, after=after, timeout=5)
            collected += resp["events"]
            after = resp["last_seq"]
            if resp["done"]:
                return collected
        raise AssertionError("job never reached a terminal state")

    def test_events_carry_rolling_and_final_snapshots(self, service):
        client, _ = service
        job = client.submit(APP, PARAMS, force=True)["job"]
        events = self._collect_events(client, job["id"])
        snaps = [e for e in events if e["event"] == "stream.snapshot"]
        assert snaps, "executed jobs must stream snapshots"
        totals = [s["events_seen"]["total"] for s in snaps]
        assert totals == sorted(totals), totals
        final = snaps[-1]
        assert final["final"] is True
        assert final["problem_count"] >= 1
        # The final snapshot's problems are the stored report's
        # problems, byte for byte.
        done = client.wait(job["id"])
        stored = client.report(done["report_key"])
        assert (json.dumps(final["problems"], sort_keys=True)
                == json.dumps(stored["problems"], sort_keys=True))
        # Snapshots precede job.done in the stream.
        names = [e["event"] for e in events]
        assert names.index("stream.snapshot") < names.index("job.done")

    def test_midrun_snapshot_arrives_before_completion(self, service):
        client, _ = service
        # Big enough to run for a perceptible fraction of a second, so
        # long-polls observe the job mid-flight.
        job = client.submit(APP, {"iterations": 2000}, force=True)["job"]
        saw_midrun_problems = False
        after = 0
        for _ in range(200):
            resp = client.events(job["id"], after=after, timeout=5)
            after = resp["last_seq"]
            for ev in resp["events"]:
                if (ev["event"] == "stream.snapshot"
                        and not ev["final"] and ev["problem_count"] >= 1
                        and resp["state"] == RUNNING):
                    saw_midrun_problems = True
            if resp["done"]:
                break
        assert saw_midrun_problems, (
            "ranked problems must be visible while the job is running")

    def test_dashboard_served_as_html(self, service):
        client, _ = service
        html = client._request("GET", "/dashboard")
        assert isinstance(html, str)
        for marker in ("<!DOCTYPE html>", "Ranked problems",
                       "stream.snapshot", "events.dropped", "/events?job="):
            assert marker in html

    def test_ring_overflow_emits_dropped_marker_and_metric(
            self, service, monkeypatch):
        client, daemon = service
        monkeypatch.setattr("repro.service.daemon._EVENTS_PER_JOB", 5)
        job = client.wait(client.submit(APP, PARAMS, force=True)["job"]["id"])
        resp = client.events(job["id"], after=0, timeout=1)
        first = resp["events"][0]
        assert first["event"] == "events.dropped"
        assert first["count"] >= 1
        assert first["count"] == first["seq"]  # after=0: all before survive
        # The surviving tail is contiguous after the marker.
        seqs = [e["seq"] for e in resp["events"]]
        assert seqs == list(range(first["seq"], first["seq"] + len(seqs)))
        assert resp["events"][-1]["event"] == "job.done"
        # A cursor already past the gap sees no marker.
        resp = client.events(job["id"], after=first["seq"], timeout=1)
        assert all(e["event"] != "events.dropped" for e in resp["events"])
        # The counter only sees drops that happen inside the daemon's
        # observability session (submit-time publishes precede it), so
        # assert presence and direction rather than an exact count.
        dropped = _metric_sum(client.metrics(),
                              "repro_service_events_dropped_total")
        assert dropped >= 1

    def test_tail_cli_json_emits_ndjson(self, service, capsys):
        client, _ = service
        job = client.submit(APP, PARAMS, force=True)["job"]
        assert main(["tail", job["id"], "--json",
                     "--url", client.base_url]) == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()]
        names = [e["event"] for e in events]
        assert "job.running" in names and "job.done" in names
        assert "stream.snapshot" in names

    def test_tail_cli_problems_renders_ranked_table(self, service, capsys):
        client, _ = service
        job = client.submit(APP, PARAMS, force=True)["job"]
        assert main(["tail", job["id"], "--problems",
                     "--url", client.base_url]) == 0
        out = capsys.readouterr().out
        assert "snapshot v" in out and "(final)" in out
        assert "unnecessary_synchronization" in out
        assert "benefit=" in out

    def test_tail_cli_json_and_problems_conflict(self, service):
        client, _ = service
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["tail", "job-000001", "--json", "--problems",
                  "--url", client.base_url])

    def test_tail_cli_warns_on_dropped_events(self, service, capsys,
                                              monkeypatch):
        client, _ = service
        monkeypatch.setattr("repro.service.daemon._EVENTS_PER_JOB", 5)
        job = client.wait(client.submit(APP, PARAMS, force=True)["job"]["id"])
        assert main(["tail", job["id"], "--url", client.base_url]) == 0
        captured = capsys.readouterr()
        assert "events dropped" in captured.err
        assert "events.dropped" not in captured.out  # stderr-only warning


class TestDaemonValidation:
    def test_unknown_workload_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="unknown workload") as info:
            client.submit("no-such-app", {})
        assert info.value.status == 400

    def test_bad_params_are_400(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="bad params") as info:
            client.submit(APP, {"bogus_arg": 1})
        assert info.value.status == 400

    def test_unknown_report_and_job_are_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="no stored report") as info:
            client.report("deadbeef")
        assert info.value.status == 404
        with pytest.raises(ServiceError, match="no such job"):
            client.job("job-424242")

    def test_unknown_route_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError) as info:
            client._request("GET", "/no/such/route")
        assert info.value.status == 404

    def test_malformed_submit_bodies_are_400(self, service):
        client, _ = service
        import urllib.request

        request = urllib.request.Request(
            client.base_url + "/submit", method="POST", data=b"{not json")
        with pytest.raises(Exception) as info:
            urllib.request.urlopen(request, timeout=10)
        assert getattr(info.value, "code", None) == 400
        with pytest.raises(ServiceError, match="workload"):
            client._request("POST", "/submit", {"params": {}})

    def test_unreachable_service_fails_with_hint(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2)
        with pytest.raises(ServiceError, match="diogenes serve"):
            client.health()


class TestDiffEndpoint:
    def _two_reports(self, client):
        base = client.wait(client.submit(APP, PARAMS)["job"]["id"])
        fixed = client.wait(client.submit(
            APP, {**PARAMS, "fixed": True})["job"]["id"])
        return base["report_key"], fixed["report_key"]

    def test_diff_reports_removed_groups_and_runtime_delta(self, service):
        client, _ = service
        key_a, key_b = self._two_reports(client)
        diff = client.diff(key_a, key_b)
        assert diff["counts"]["fixed"] == 1
        assert diff["counts"]["new"] == diff["counts"]["regressed"] == 0
        assert diff["is_regression"] is False
        (fixed_group,) = [g for g in diff["groups"]
                          if g["status"] == "fixed"]
        assert fixed_group["kind"] == "unnecessary_synchronization"
        assert diff["execution_delta"] < 0
        # The measured speedup agrees with the stored benefit estimate.
        assert abs(-diff["execution_delta"] - diff["recovered_benefit"]) \
            <= 0.25 * diff["recovered_benefit"]

    def test_diff_missing_report_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="no stored report") as info:
            client.diff("feed" * 16, "beef" * 16)
        assert info.value.status == 404

    def test_diff_schema_mismatch_is_409(self, service, tmp_path):
        client, daemon = service
        key_a, key_b = self._two_reports(client)
        # An old stored report (different schema stamp) must refuse
        # loudly instead of diffing garbage.
        path = daemon.store._path(key_b)
        envelope = json.loads(path.read_text())
        envelope["report"]["schema_version"] = 999
        path.write_text(json.dumps(envelope))
        with pytest.raises(ServiceError,
                           match="schema") as info:
            client.diff(key_a, key_b)
        assert info.value.status == 409

    def test_diff_needs_both_keys(self, service):
        client, _ = service
        with pytest.raises(ServiceError, match="a=<report-key>") as info:
            client._request("GET", "/diff?a=onlyone")
        assert info.value.status == 400


# ----------------------------------------------------------------------
# CLI client commands against a live daemon
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_submit_status_fetch_diff_flow(self, service, tmp_path, capsys):
        client, _ = service
        url = client.base_url
        assert main(["submit", APP, "--param", "iterations=4",
                     "--wait", "--url", url,
                     "--json", str(tmp_path / "base.json")]) == 0
        out = capsys.readouterr().out
        assert "job-000001" in out and "done" in out
        assert (json.loads((tmp_path / "base.json").read_text())
                ["workload"] == APP)
        # Byte-identity straight through the CLI file path.
        assert (tmp_path / "base.json").read_text() == \
            _serial_json(APP, PARAMS)

        assert main(["submit", APP, "--param", "iterations=4",
                     "--param", "fixed=true", "--wait", "--url", url]) == 0
        capsys.readouterr()

        assert main(["status", "--url", url]) == 0
        out = capsys.readouterr().out
        assert "job-000001" in out and "done: 2" in out
        assert main(["status", "job-000001", "--url", url]) == 0
        assert "report key:" in capsys.readouterr().out

        assert main(["fetch", "job-000001", "--url", url,
                     "--out", str(tmp_path / "fetched.json")]) == 0
        assert (tmp_path / "fetched.json").read_text() == \
            _serial_json(APP, PARAMS)

        assert main(["diff", "job-000001", "job-000002", "--url", url,
                     "--json", str(tmp_path / "diff.json")]) == 0
        out = capsys.readouterr().out
        assert "Fixed problem groups (1)" in out
        assert "No regression" in out
        assert json.loads((tmp_path / "diff.json").read_text())[
            "counts"]["fixed"] == 1

    def test_cli_regression_gate_exit_code(self, service, capsys):
        client, _ = service
        url = client.base_url
        base = client.wait(client.submit(APP, PARAMS)["job"]["id"])
        fixed = client.wait(client.submit(
            APP, {**PARAMS, "fixed": True})["job"]["id"])
        # b -> a *introduces* the sync problems: that is the regression.
        assert main(["diff", fixed["report_key"], base["report_key"],
                     "--url", url, "--fail-on-regression"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_surfaces_service_errors(self, service):
        client, _ = service
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["submit", "no-such-app", "--url", client.base_url])
