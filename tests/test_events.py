"""Tests for CUDA events: record/synchronize semantics and their place
in the synchronization funnel."""

import pytest

from repro.cupti import CuptiSubscription
from repro.driver.api import INTERNAL_WAIT_SYMBOL, CudaEvent
from repro.driver.errors import InvalidHandleError, InvalidValueError
from repro.instr.probes import Probe


class TestEventSemantics:
    def test_event_fires_at_record_time_stream_completion(self, ctx):
        rt = ctx.cudart
        rt.cudaLaunchKernel("k1", 2e-3)
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev)          # covers k1
        rt.cudaLaunchKernel("k2", 5e-3)  # after the record: not covered
        rt.cudaEventSynchronize(ev)
        # Waited for k1 only, not k2.
        assert 2e-3 <= ctx.machine.now < 4e-3

    def test_event_sync_after_completion_is_free(self, ctx):
        rt = ctx.cudart
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev)
        ctx.cpu_work(1e-3)
        before = ctx.machine.now
        rt.cudaEventSynchronize(ev)
        assert ctx.machine.now - before < 50e-6

    def test_elapsed_time_between_events(self, ctx):
        rt = ctx.cudart
        a = rt.cudaEventCreate()
        b = rt.cudaEventCreate()
        rt.cudaEventRecord(a)
        rt.cudaLaunchKernel("k", 3e-3)
        rt.cudaEventRecord(b)
        ms = rt.cudaEventElapsedTime(a, b)
        assert ms == pytest.approx(3.0, rel=0.1)

    def test_sync_on_unrecorded_event_rejected(self, ctx):
        ev = ctx.cudart.cudaEventCreate()
        with pytest.raises(InvalidValueError):
            ctx.cudart.cudaEventSynchronize(ev)

    def test_elapsed_on_unrecorded_rejected(self, ctx):
        a = ctx.cudart.cudaEventCreate()
        b = ctx.cudart.cudaEventCreate()
        ctx.cudart.cudaEventRecord(a)
        with pytest.raises(InvalidValueError):
            ctx.cudart.cudaEventElapsedTime(a, b)

    def test_destroyed_event_unusable(self, ctx):
        ev = ctx.cudart.cudaEventCreate()
        ctx.cudart.cudaEventDestroy(ev)
        with pytest.raises(InvalidHandleError):
            ctx.cudart.cudaEventRecord(ev)

    def test_event_on_side_stream(self, ctx):
        rt = ctx.cudart
        s1 = rt.cudaStreamCreate()
        rt.cudaLaunchKernel("long", 10e-3, stream=0)
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev, stream=s1)  # empty stream: fires now
        rt.cudaEventSynchronize(ev)
        assert ctx.machine.now < 5e-3


class TestEventInstrumentationVisibility:
    def test_event_sync_goes_through_the_funnel(self, ctx):
        waits = []
        ctx.driver.dispatch.attach(Probe(
            {INTERNAL_WAIT_SYMBOL},
            exit=lambda r: waits.append(r.meta.get("wait_duration", 0.0))))
        rt = ctx.cudart
        rt.cudaLaunchKernel("k", 1e-3)
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev)
        rt.cudaEventSynchronize(ev)
        assert len(waits) == 1
        assert waits[0] == pytest.approx(1e-3, rel=0.1)

    def test_event_sync_is_cupti_visible(self, ctx):
        sub = CuptiSubscription(machine=ctx.machine)
        ctx.driver.attach_cupti(sub)
        rt = ctx.cudart
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev)
        rt.cudaEventSynchronize(ev)
        assert [r.kind for r in sub.sync_records] == ["event"]

    def test_stage1_discovers_event_sync_sites(self):
        from repro.apps.base import Workload
        from repro.core.diogenes import DiogenesConfig
        from repro.core.stage1_baseline import run_stage1

        class EventApp(Workload):
            name = "event-app"

            def run(self, ctx):
                rt = ctx.cudart
                with ctx.frame("main", "ev.cu", 5):
                    rt.cudaLaunchKernel("k", 1e-3)
                    ev = rt.cudaEventCreate()
                    rt.cudaEventRecord(ev)
                    with ctx.frame("main", "ev.cu", 9):
                        rt.cudaEventSynchronize(ev)

        data = run_stage1(EventApp(), DiogenesConfig())
        assert "cudaEventSynchronize" in data.synchronizing_functions

    def test_diogenes_classifies_unused_event_sync(self):
        import numpy as np

        from repro.apps.base import Workload
        from repro.core.diogenes import Diogenes
        from repro.core.graph import ProblemKind

        class EventLoopApp(Workload):
            name = "event-loop-app"

            def run(self, ctx):
                rt = ctx.cudart
                with ctx.frame("main", "ev.cu", 5):
                    dev = rt.cudaMalloc(4096)
                    out = ctx.host_array(512)
                    for i in range(5):
                        with ctx.frame("step", "ev.cu", 10):
                            rt.cudaLaunchKernel(
                                "k", 500e-6,
                                writes=[(dev, np.full(512, float(i)))])
                            ev = rt.cudaEventCreate()
                            rt.cudaEventRecord(ev)
                        with ctx.frame("step", "ev.cu", 14):
                            rt.cudaEventSynchronize(ev)  # nothing read
                        ctx.cpu_work(300e-6, "between")
                    with ctx.frame("main", "ev.cu", 20):
                        rt.cudaMemcpy(out, dev)
                    with ctx.frame("main", "ev.cu", 21):
                        self.checksum = float(out.read().sum())

        report = Diogenes(EventLoopApp()).run()
        event_problems = [p for p in report.analysis.problems
                          if p.api_name == "cudaEventSynchronize"]
        assert len(event_problems) == 5
        assert all(p.kind is ProblemKind.UNNECESSARY_SYNC
                   for p in event_problems)
        assert report.total_benefit > 0


class TestQueries:
    """Non-blocking completion polls never enter the wait funnel."""

    def test_stream_query_reflects_completion(self, ctx):
        rt = ctx.cudart
        rt.cudaLaunchKernel("k", 2e-3)
        assert rt.cudaStreamQuery(0) is False
        rt.cudaDeviceSynchronize()
        assert rt.cudaStreamQuery(0) is True

    def test_event_query_reflects_firing(self, ctx):
        rt = ctx.cudart
        rt.cudaLaunchKernel("k", 2e-3)
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev)
        assert rt.cudaEventQuery(ev) is False
        ctx.cpu_work(3e-3)
        assert rt.cudaEventQuery(ev) is True

    def test_queries_never_block(self, ctx):
        from repro.driver.api import INTERNAL_WAIT_SYMBOL
        from repro.instr.probes import Probe

        waits = []
        ctx.driver.dispatch.attach(Probe(
            {INTERNAL_WAIT_SYMBOL}, exit=lambda r: waits.append(1)))
        rt = ctx.cudart
        rt.cudaLaunchKernel("k", 10e-3)
        ev = rt.cudaEventCreate()
        rt.cudaEventRecord(ev)
        for _ in range(5):
            rt.cudaStreamQuery(0)
            rt.cudaEventQuery(ev)
        assert waits == []
        assert ctx.machine.now < 1e-3
