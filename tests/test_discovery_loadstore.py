"""Tests for sync-function discovery and load/store instrumentation."""

import numpy as np
import pytest

from repro.driver.api import INTERNAL_WAIT_SYMBOL
from repro.hostmem.buffer import HostBuffer
from repro.instr.discovery import discover_sync_function
from repro.instr.loadstore import LoadStoreInstrumenter, RegionSet
from repro.sim.machine import Machine


class TestDiscovery:
    def test_finds_the_internal_wait_symbol(self):
        evidence = discover_sync_function()
        assert evidence.wait_symbol == INTERNAL_WAIT_SYMBOL

    def test_every_trigger_blocked_in_the_funnel(self):
        evidence = discover_sync_function()
        for api, stack in evidence.blocked_in.items():
            assert stack[-1] == INTERNAL_WAIT_SYMBOL, api

    def test_blocked_stack_shows_calling_api(self):
        evidence = discover_sync_function()
        assert evidence.blocked_in["cuCtxSynchronize"][0] == "cuCtxSynchronize"

    def test_non_blocking_trigger_is_an_error(self):
        def never_blocks(ctx):
            ctx.driver.cuMemAlloc(64)

        with pytest.raises(RuntimeError, match="did not block"):
            discover_sync_function({"cuMemAlloc": never_blocks})

    def test_candidates_ordered_outermost_first(self):
        evidence = discover_sync_function()
        assert evidence.candidates[-1] == evidence.wait_symbol


class TestRegionSet:
    def test_add_and_match(self):
        regions = RegionSet()
        r = regions.add(100, 50, tag="a")
        assert regions.matches(100, 1) == [r]
        assert regions.matches(149, 1) == [r]
        assert regions.matches(150, 1) == []
        assert regions.matches(99, 1) == []

    def test_overlap_straddling_start(self):
        regions = RegionSet()
        r = regions.add(100, 50)
        assert regions.matches(90, 20) == [r]

    def test_multiple_overlapping_regions(self):
        regions = RegionSet()
        a = regions.add(0, 100)
        b = regions.add(50, 100)
        assert set(map(id, regions.matches(60, 1))) == {id(a), id(b)}

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            RegionSet().add(0, 0)

    def test_remove(self):
        regions = RegionSet()
        r = regions.add(10, 10)
        regions.remove(r)
        assert regions.matches(10, 1) == []
        with pytest.raises(KeyError):
            regions.remove(r)

    def test_remove_picks_identity_among_same_start(self):
        regions = RegionSet()
        a = regions.add(10, 10)
        b = regions.add(10, 20)
        regions.remove(a)
        assert regions.matches(10, 1) == [b]

    def test_drop_range(self):
        regions = RegionSet()
        regions.add(0, 10)
        regions.add(20, 10)
        regions.add(25, 100)  # extends past the dropped range
        dropped = regions.drop_range(0, 40)
        assert dropped == 2
        assert len(regions) == 1


class TestLoadStoreInstrumenter:
    def _setup(self):
        machine = Machine()
        from repro.hostmem.allocator import HostAddressSpace
        from repro.instr.stacks import CallStackTracker

        space = HostAddressSpace(machine.clock)
        stacks = CallStackTracker()
        instr = LoadStoreInstrumenter(space, stacks, machine)
        return machine, space, stacks, instr

    def test_matching_access_reported_with_stack(self):
        machine, space, stacks, instr = self._setup()
        buf = HostBuffer(space, 64)
        instr.regions.add(buf.address, buf.nbytes)
        hits = []
        instr.on_access(lambda e, s, r: hits.append((e.kind, s)))
        with instr:
            with stacks.frame("reader", "app.cpp", 42):
                buf.read()
        assert len(hits) == 1
        kind, stack = hits[0]
        assert kind == "load"
        assert stack.leaf.line == 42

    def test_non_matching_access_ignored(self):
        machine, space, stacks, instr = self._setup()
        watched = HostBuffer(space, 64)
        other = HostBuffer(space, 64)
        instr.regions.add(watched.address, watched.nbytes)
        hits = []
        instr.on_access(lambda e, s, r: hits.append(e))
        with instr:
            other.read()
        assert hits == []
        assert instr.access_count == 1
        assert instr.match_count == 0

    def test_overhead_charged_only_on_match(self):
        machine, space, stacks, instr = self._setup()
        instr.overhead_per_access = 1e-4
        watched = HostBuffer(space, 64)
        other = HostBuffer(space, 64)
        instr.regions.add(watched.address, watched.nbytes)
        with instr:
            other.read()
            assert machine.now == 0.0
            watched.read()
            assert machine.now == pytest.approx(1e-4)

    def test_uninstall_stops_reporting(self):
        machine, space, stacks, instr = self._setup()
        buf = HostBuffer(space, 64)
        instr.regions.add(buf.address, buf.nbytes)
        hits = []
        instr.on_access(lambda e, s, r: hits.append(e))
        instr.install()
        buf.read()
        instr.uninstall()
        buf.read()
        assert len(hits) == 1

    def test_double_install_rejected(self):
        _, _, _, instr = self._setup()
        instr.install()
        with pytest.raises(RuntimeError):
            instr.install()

    def test_store_access_matches(self):
        machine, space, stacks, instr = self._setup()
        buf = HostBuffer(space, 64)
        instr.regions.add(buf.address, buf.nbytes)
        kinds = []
        instr.on_access(lambda e, s, r: kinds.append(e.kind))
        with instr:
            buf.write(np.array([1.0]))
        assert kinds == ["store"]
