"""Tests for the expected-benefit algorithm (Figure 5), including the
Figure 4 worked examples."""

import pytest

from repro.core.benefit import (
    BenefitConfig,
    expected_benefit,
    expected_benefit_subset,
    naive_resource_estimate,
)
from repro.core.graph import CpuNode, ExecutionGraph, NodeType, ProblemKind

U = ProblemKind.UNNECESSARY_SYNC
M = ProblemKind.MISPLACED_SYNC
T = ProblemKind.UNNECESSARY_TRANSFER


def make_graph(spec):
    """Build a graph from (ntype, duration[, problem[, first_use]]) tuples."""
    nodes = []
    t = 0.0
    for entry in spec:
        ntype, duration = entry[0], entry[1]
        problem = entry[2] if len(entry) > 2 else ProblemKind.NONE
        first_use = entry[3] if len(entry) > 3 else 0.0
        nodes.append(CpuNode(ntype, t, duration, problem=problem,
                             first_use_time=first_use))
        t += duration
    return ExecutionGraph(nodes, execution_time=t)


class TestRemoveSynchronization:
    def test_fully_absorbed_wait(self):
        # 10 units of wait, 10 units of CPU work before the next sync.
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 10.0),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        assert result.total == pytest.approx(10.0)
        assert result.final_durations[0] == 0.0
        assert result.final_durations[2] == pytest.approx(1.0)  # unchanged

    def test_unabsorbed_wait_moves_to_next_sync(self):
        # Only 2 units of cover: benefit 2, the other 8 reappear later.
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 2.0),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        assert result.total == pytest.approx(2.0)
        assert result.final_durations[2] == pytest.approx(1.0 + 8.0)

    def test_no_cover_means_no_benefit(self):
        g = make_graph([
            (NodeType.CWAIT, 5.0, U),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        assert result.total == 0.0
        assert result.final_durations[1] == pytest.approx(6.0)

    def test_claunch_counts_as_cover(self):
        g = make_graph([
            (NodeType.CWAIT, 4.0, U),
            (NodeType.CLAUNCH, 3.0),
            (NodeType.CWAIT, 1.0),
        ])
        assert expected_benefit(g).total == pytest.approx(3.0)

    def test_exit_node_terminates_search(self):
        # A trailing unnecessary sync with CPU work after it.
        g = make_graph([
            (NodeType.CWAIT, 5.0, U),
            (NodeType.CWORK, 3.0),
        ])
        assert expected_benefit(g).total == pytest.approx(3.0)

    def test_sequence_carry_forward(self):
        # A's unabsorbed wait carries into B (also problematic) and gets
        # absorbed by the large cover after B — the §3.5.2 mechanism.
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),   # A
            (NodeType.CWORK, 2.0),
            (NodeType.CWAIT, 5.0, U),    # B
            (NodeType.CWORK, 20.0),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        # A absorbs 2; carry 8 lands on B, which then removes 13 against
        # a cover of 20.
        by_index = result.by_index()
        assert by_index[0].est_benefit == pytest.approx(2.0)
        assert by_index[2].est_benefit == pytest.approx(13.0)
        assert result.total == pytest.approx(15.0)

    def test_carry_lost_at_necessary_sync(self):
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 2.0),
            (NodeType.CWAIT, 5.0),       # necessary: absorbs the carry
            (NodeType.CWORK, 100.0),
        ])
        assert expected_benefit(g).total == pytest.approx(2.0)


class TestMisplacedSynchronization:
    def test_benefit_is_first_use_time(self):
        g = make_graph([
            (NodeType.CWAIT, 10.0, M, 4.0),
            (NodeType.CWORK, 1.0),
        ])
        result = expected_benefit(g)
        assert result.total == pytest.approx(4.0)
        assert result.final_durations[0] == pytest.approx(6.0)

    def test_capped_at_wait_by_default(self):
        g = make_graph([
            (NodeType.CWAIT, 3.0, M, 10.0),
            (NodeType.CWORK, 1.0),
        ])
        result = expected_benefit(g)
        assert result.total == pytest.approx(3.0)
        assert result.final_durations[0] == 0.0

    def test_uncapped_runs_figure5_verbatim(self):
        g = make_graph([
            (NodeType.CWAIT, 3.0, M, 10.0),
            (NodeType.CWORK, 1.0),
        ])
        result = expected_benefit(g, BenefitConfig(cap_misplaced_at_wait=False))
        assert result.total == pytest.approx(10.0)  # the pseudocode's answer
        assert result.final_durations[0] == 0.0     # max(0, 3 - 10)


class TestRemoveMemoryTransfer:
    def test_benefit_is_launch_duration(self):
        g = make_graph([
            (NodeType.CLAUNCH, 2.5, T),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        assert result.total == pytest.approx(2.5)
        assert result.final_durations[0] == 0.0

    def test_earlier_removed_transfer_no_longer_covers_idle(self):
        # Figure 5 processes nodes in time order and mutates durations
        # in place: a transfer removed *before* a sync is evaluated no
        # longer counts as idle cover for it...
        g = make_graph([
            (NodeType.CLAUNCH, 3.0, T),
            (NodeType.CWAIT, 5.0, U),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        assert result.by_index()[1].est_benefit == pytest.approx(0.0)

    def test_later_removed_transfer_still_covers_idle(self):
        # ...whereas a transfer *after* the sync has not been zeroed yet
        # when the sync is processed, so it still counts — a documented
        # optimism of the published algorithm, preserved faithfully.
        g = make_graph([
            (NodeType.CLAUNCH, 3.0, T),
            (NodeType.CWAIT, 5.0, U),
            (NodeType.CLAUNCH, 2.0, T),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        by_index = result.by_index()
        assert by_index[0].est_benefit == pytest.approx(3.0)
        assert by_index[1].est_benefit == pytest.approx(2.0)
        assert by_index[2].est_benefit == pytest.approx(2.0)


class TestSubset:
    def _graph(self):
        return make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 2.0),
            (NodeType.CWAIT, 5.0, U),
            (NodeType.CWORK, 20.0),
            (NodeType.CWAIT, 1.0),
        ])

    def test_subset_of_one(self):
        g = self._graph()
        result = expected_benefit_subset(g, [2])
        assert result.total == pytest.approx(5.0)

    def test_subset_equals_full_when_all_selected(self):
        g = self._graph()
        full = expected_benefit(g).total
        subset = expected_benefit_subset(g, [0, 2]).total
        assert subset == pytest.approx(full)

    def test_subset_order_normalised(self):
        g = self._graph()
        assert expected_benefit_subset(g, [2, 0]).total == \
            pytest.approx(expected_benefit_subset(g, [0, 2]).total)

    def test_unknown_index_rejected(self):
        with pytest.raises(IndexError):
            expected_benefit_subset(self._graph(), [99])

    def test_unproblematic_node_rejected(self):
        with pytest.raises(ValueError):
            expected_benefit_subset(self._graph(), [1])

    def test_does_not_mutate_graph(self):
        g = self._graph()
        before = [n.duration for n in g.nodes]
        expected_benefit_subset(g, [0])
        expected_benefit(g)
        assert [n.duration for n in g.nodes] == before


class TestFigure4:
    """The paper's Figure 4: identical waits, different outcomes."""

    def _case(self, cover: float, k1: float):
        return make_graph([
            (NodeType.CWORK, 8.0),            # CWork0
            (NodeType.CLAUNCH, 0.1),          # launch the big kernel
            (NodeType.CWAIT, 10.0, U),        # CWait0 — removed in both
            (NodeType.CWORK, cover),          # CPU work before next sync
            (NodeType.CLAUNCH, 0.1),
            (NodeType.CWAIT, k1),             # CWait1 (necessary)
        ])

    def test_large_benefit_case(self):
        g = self._case(cover=10.0, k1=4.0)
        result = expected_benefit(g)
        assert result.total == pytest.approx(10.0, rel=0.02)
        # the second wait barely grows
        assert result.final_durations[5] == pytest.approx(4.0, abs=0.2)

    def test_small_benefit_case(self):
        g = self._case(cover=2.0, k1=4.0)
        result = expected_benefit(g)
        assert result.total == pytest.approx(2.1, abs=0.2)
        # the second wait grows to fill most of the removed time
        assert result.final_durations[5] > 4.0 + 7.0

    def test_identical_waits_different_outcomes(self):
        large = expected_benefit(self._case(10.0, 4.0)).total
        small = expected_benefit(self._case(2.0, 4.0)).total
        assert large > 4 * small


class TestNaiveEstimate:
    def test_naive_is_sum_of_problem_durations(self):
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 1.0),
            (NodeType.CLAUNCH, 2.0, T),
        ])
        assert naive_resource_estimate(g) == pytest.approx(12.0)

    def test_ffm_estimate_never_exceeds_naive(self):
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 1.0),
            (NodeType.CWAIT, 3.0, U),
            (NodeType.CWORK, 0.5),
        ])
        assert expected_benefit(g).total <= naive_resource_estimate(g)


class TestProvenance:
    """NodeBenefit carries window/carry bookkeeping for explanations."""

    def test_carry_bookkeeping_balances(self):
        g = make_graph([
            (NodeType.CWAIT, 10.0, U),
            (NodeType.CWORK, 2.0),
            (NodeType.CWAIT, 5.0, U),
            (NodeType.CWORK, 20.0),
            (NodeType.CWAIT, 1.0),
        ])
        result = expected_benefit(g)
        first, second = result.per_node
        assert first.window == pytest.approx(2.0)
        assert first.carried_in == 0.0
        assert first.carried_out == pytest.approx(8.0)
        assert second.carried_in == pytest.approx(8.0)
        assert second.carried_out == 0.0
        # Conservation: benefit + carried_out = duration + carried_in.
        for nb in result.per_node:
            node = g.nodes[nb.node_index]
            assert nb.est_benefit + nb.carried_out == pytest.approx(
                node.duration + nb.carried_in)

    def test_misplaced_window_is_first_use(self):
        g = make_graph([
            (NodeType.CWAIT, 10.0, M, 4.0),
            (NodeType.CWORK, 1.0),
        ])
        (nb,) = expected_benefit(g).per_node
        assert nb.window == pytest.approx(4.0)

    def test_transfer_window_is_launch_duration(self):
        g = make_graph([
            (NodeType.CLAUNCH, 2.5, T),
            (NodeType.CWAIT, 1.0),
        ])
        (nb,) = expected_benefit(g).per_node
        assert nb.window == pytest.approx(2.5)
