"""Unit tests for device ops, engines, streams, and the GPU scheduler."""

import math

import pytest

from repro.sim.device import DeviceError, GpuDevice
from repro.sim.engine import Engine
from repro.sim.ops import DeviceOp, OpKind
from repro.sim.stream import Stream


def op(kind=OpKind.KERNEL, duration=1.0, stream=0, **kw):
    return DeviceOp(kind=kind, duration=duration, stream_id=stream, **kw)


class TestDeviceOp:
    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            op(duration=-1.0)

    def test_negative_nbytes_rejected(self):
        with pytest.raises(ValueError):
            op(nbytes=-5)

    def test_op_ids_are_unique(self):
        assert op().op_id != op().op_id

    def test_infinite_op_never_completes(self):
        probe = op(duration=math.inf)
        assert probe.never_completes
        probe.cancelled = True
        assert not probe.never_completes

    def test_copy_kind_classification(self):
        assert OpKind.COPY_H2D.is_copy
        assert OpKind.COPY_D2H.is_copy
        assert not OpKind.KERNEL.is_copy
        assert not OpKind.MEMSET.is_copy


class TestEngine:
    def test_schedules_back_to_back(self):
        engine = Engine("compute")
        a, b = op(duration=2.0), op(duration=3.0)
        engine.schedule(a, earliest_start=0.0)
        engine.schedule(b, earliest_start=0.0)
        assert (a.start_time, a.end_time) == (0.0, 2.0)
        assert (b.start_time, b.end_time) == (2.0, 5.0)

    def test_respects_earliest_start(self):
        engine = Engine("compute")
        a = op(duration=1.0)
        engine.schedule(a, earliest_start=10.0)
        assert a.start_time == 10.0

    def test_busy_time_accumulates(self):
        engine = Engine("compute")
        engine.schedule(op(duration=2.0), 0.0)
        engine.schedule(op(duration=0.5), 0.0)
        assert engine.busy_time == pytest.approx(2.5)

    def test_infinite_op_blocks_engine(self):
        engine = Engine("compute")
        engine.schedule(op(duration=math.inf), 0.0)
        assert engine.blocked_forever
        later = op(duration=1.0)
        engine.schedule(later, 0.0)
        assert math.isinf(later.start_time)

    def test_cancel_infinite_frees_engine(self):
        engine = Engine("compute")
        probe = op(duration=math.inf)
        engine.schedule(probe, 0.0)
        cancelled = engine.cancel_infinite(now=7.0)
        assert cancelled is probe
        assert probe.cancelled
        assert not engine.blocked_forever
        assert engine.free_at == 7.0

    def test_cancel_without_infinite_returns_none(self):
        assert Engine("compute").cancel_infinite(0.0) is None


class TestStream:
    def test_records_completion_time(self):
        stream = Stream(1)
        a = op(duration=2.0, stream=1)
        a.start_time, a.end_time = 0.0, 2.0
        stream.record(a)
        assert stream.completion_time() == 2.0
        assert stream.op_count == 1

    def test_idle_periods_between_ops(self):
        stream = Stream(0)
        for (s, e) in [(0.0, 1.0), (3.0, 4.0), (4.0, 5.0)]:
            o = op(duration=e - s)
            o.start_time, o.end_time = s, e
            stream.record(o)
        assert stream.idle_periods() == [(1.0, 3.0)]

    def test_idle_periods_skip_cancelled(self):
        stream = Stream(0)
        a = op(duration=1.0)
        a.start_time, a.end_time = 0.0, 1.0
        b = op(duration=1.0)
        b.start_time, b.end_time, b.cancelled = 5.0, 6.0, True
        stream.record(a)
        stream.record(b)
        assert stream.idle_periods() == []


class TestGpuDevice:
    def test_stream_dependency_orders_ops(self):
        gpu = GpuDevice()
        a = gpu.enqueue(op(duration=2.0), now=0.0)
        b = gpu.enqueue(op(duration=1.0), now=0.0)
        assert b.start_time == a.end_time

    def test_streams_overlap_on_different_engines(self):
        gpu = GpuDevice()
        s1 = gpu.create_stream()
        kernel = gpu.enqueue(op(duration=5.0), now=0.0)
        copy = gpu.enqueue(op(kind=OpKind.COPY_H2D, duration=1.0, stream=s1),
                           now=0.0)
        assert copy.start_time == 0.0  # copy engine free despite busy compute
        assert kernel.start_time == 0.0

    def test_same_engine_serializes_across_streams(self):
        gpu = GpuDevice()
        s1 = gpu.create_stream()
        a = gpu.enqueue(op(duration=3.0, stream=0), now=0.0)
        b = gpu.enqueue(op(duration=1.0, stream=s1), now=0.0)
        assert b.start_time == a.end_time  # one compute engine

    def test_op_cannot_start_before_enqueue(self):
        gpu = GpuDevice()
        a = gpu.enqueue(op(duration=1.0), now=4.0)
        assert a.start_time == 4.0

    def test_busy_until_covers_all_streams(self):
        gpu = GpuDevice()
        s1 = gpu.create_stream()
        gpu.enqueue(op(duration=1.0, stream=0), now=0.0)
        gpu.enqueue(op(kind=OpKind.COPY_D2H, duration=9.0, stream=s1), now=0.0)
        assert gpu.busy_until() == 9.0

    def test_stream_completion_time_is_per_stream(self):
        gpu = GpuDevice()
        s1 = gpu.create_stream()
        gpu.enqueue(op(duration=5.0, stream=0), now=0.0)
        gpu.enqueue(op(kind=OpKind.COPY_D2H, duration=1.0, stream=s1), now=0.0)
        assert gpu.stream_completion_time(s1) == 1.0
        assert gpu.stream_completion_time(0) == 5.0

    def test_default_stream_cannot_be_destroyed(self):
        with pytest.raises(DeviceError):
            GpuDevice().destroy_stream(0)

    def test_unknown_stream_rejected(self):
        gpu = GpuDevice()
        with pytest.raises(DeviceError):
            gpu.stream(42)

    def test_destroyed_stream_is_gone(self):
        gpu = GpuDevice()
        sid = gpu.create_stream()
        gpu.destroy_stream(sid)
        with pytest.raises(DeviceError):
            gpu.stream(sid)

    def test_cancel_op_rejects_non_infinite(self):
        gpu = GpuDevice()
        a = gpu.enqueue(op(duration=1.0), now=0.0)
        with pytest.raises(DeviceError):
            gpu.cancel_op(a, now=0.5)

    def test_cancel_op_rejects_queued_behind(self):
        gpu = GpuDevice()
        probe = gpu.enqueue(op(duration=math.inf), now=0.0)
        gpu.enqueue(op(duration=1.0), now=0.0)
        with pytest.raises(DeviceError):
            gpu.cancel_op(probe, now=1.0)

    def test_cancel_op_resets_stream(self):
        gpu = GpuDevice()
        probe = gpu.enqueue(op(duration=math.inf), now=0.0)
        gpu.cancel_op(probe, now=2.0)
        assert gpu.busy_until() == 2.0

    def test_compute_idle_periods_ground_truth(self):
        gpu = GpuDevice()
        gpu.enqueue(op(duration=1.0), now=0.0)     # [0, 1]
        gpu.enqueue(op(duration=1.0), now=3.0)     # [3, 4]
        assert gpu.compute_idle_periods() == [(0.0, 0.0), (1.0, 3.0)] or \
            gpu.compute_idle_periods() == [(1.0, 3.0)]

    def test_total_busy_time(self):
        gpu = GpuDevice()
        gpu.enqueue(op(duration=2.0), now=0.0)
        gpu.enqueue(op(kind=OpKind.COPY_H2D, duration=0.5), now=0.0)
        assert gpu.total_busy_time() == pytest.approx(2.5)


class TestConcurrentKernels:
    """Multi-compute-engine devices run independent streams' kernels
    in parallel."""

    def test_two_engines_overlap_independent_streams(self):
        gpu = GpuDevice(compute_engines=2)
        s1 = gpu.create_stream()
        a = gpu.enqueue(op(duration=5.0, stream=0), now=0.0)
        b = gpu.enqueue(op(duration=5.0, stream=s1), now=0.0)
        assert a.start_time == 0.0
        assert b.start_time == 0.0
        assert gpu.busy_until() == 5.0

    def test_engine_count_limits_parallelism(self):
        gpu = GpuDevice(compute_engines=2)
        streams = [0, gpu.create_stream(), gpu.create_stream()]
        ops = [gpu.enqueue(op(duration=3.0, stream=s), now=0.0)
               for s in streams]
        starts = sorted(o.start_time for o in ops)
        assert starts == [0.0, 0.0, 3.0]

    def test_same_stream_never_overlaps_itself(self):
        gpu = GpuDevice(compute_engines=4)
        a = gpu.enqueue(op(duration=2.0), now=0.0)
        b = gpu.enqueue(op(duration=2.0), now=0.0)
        assert b.start_time == a.end_time

    def test_zero_engines_rejected(self):
        with pytest.raises(DeviceError):
            GpuDevice(compute_engines=0)

    def test_machine_config_plumbs_engine_count(self):
        from repro.sim.machine import Machine, MachineConfig

        machine = Machine(MachineConfig(compute_engines=3))
        assert len(machine.gpu.compute_engines) == 3

    def test_total_busy_time_across_engines(self):
        gpu = GpuDevice(compute_engines=2)
        s1 = gpu.create_stream()
        gpu.enqueue(op(duration=2.0, stream=0), now=0.0)
        gpu.enqueue(op(duration=3.0, stream=s1), now=0.0)
        assert gpu.total_busy_time() == pytest.approx(5.0)

    def test_diogenes_works_on_multi_engine_machine(self):
        from repro.apps.synthetic import UnnecessarySyncApp
        from repro.core.diogenes import Diogenes, DiogenesConfig
        from repro.sim.machine import MachineConfig

        config = DiogenesConfig(
            machine_config=MachineConfig(compute_engines=2))
        report = Diogenes(UnnecessarySyncApp(iterations=4), config).run()
        assert len(report.analysis.problems) == 4
