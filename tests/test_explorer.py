"""Tests for the interactive terminal explorer (§4)."""

import io

import pytest

from repro.apps.cumf_als import CumfAls
from repro.apps.synthetic import QuietApp, UnnecessarySyncApp
from repro.core.diogenes import Diogenes
from repro.core.explorer import Explorer, explore


@pytest.fixture(scope="module")
def als_report():
    return Diogenes(CumfAls(iterations=3)).run()


@pytest.fixture(scope="module")
def simple_report():
    return Diogenes(UnnecessarySyncApp(iterations=4)).run()


class TestExplorerSession:
    def test_opens_with_overview(self, simple_report):
        out = explore(simple_report, [])
        assert "Diogenes Overview Display" in out

    def test_figure_678_walk(self, als_report):
        out = explore(als_report, [
            "fold cudaFree",
            "seq 1",
            "sub 10 23",
            "exit",
        ])
        assert "Fold on cudaFree" in out
        assert "Number of Sync Issues: 23" in out
        assert "Time Recoverable In Subsequence" in out
        assert "10. cudaFree in als.cpp at line 856" in out
        assert out.rstrip().endswith("bye")

    def test_sub_requires_selected_sequence(self, als_report):
        out = explore(als_report, ["sub 1 3"])
        assert "select a sequence first" in out

    def test_sub_range_errors_are_friendly(self, als_report):
        out = explore(als_report, ["seq 1", "sub 0 99"])
        assert "out of range" in out

    def test_unknown_command_suggests_help(self, simple_report):
        out = explore(simple_report, ["frobnicate"])
        assert "unknown command 'frobnicate'" in out

    def test_help_lists_commands(self, simple_report):
        out = explore(simple_report, ["help"])
        for command in ("overview", "fold", "seq", "sub", "export"):
            assert command in out

    def test_problems_fixes_overhead_views(self, simple_report):
        out = explore(simple_report, ["problems", "fixes", "overhead"])
        assert "Unnecessary synchronization" in out
        assert "remove_synchronization" in out
        assert "x baseline" in out

    def test_export_writes_json(self, simple_report, tmp_path):
        target = tmp_path / "session.json"
        out = explore(simple_report, [f"export {target}"])
        assert "JSON report written" in out
        import json

        assert json.loads(target.read_text())["workload"] == \
            "synthetic-unnecessary-sync"

    def test_bad_fold_lists_alternatives(self, simple_report):
        out = explore(simple_report, ["fold cudaNothing"])
        assert "available" in out

    def test_back_returns_to_overview(self, als_report):
        out = explore(als_report, ["seq 1", "back"])
        assert out.count("Diogenes Overview Display") == 2

    def test_empty_lines_ignored(self, simple_report):
        out = explore(simple_report, ["", "   ", "exit"])
        assert "unknown command" not in out

    def test_quiet_app_seq_is_graceful(self):
        report = Diogenes(QuietApp(iterations=2)).run()
        out = explore(report, ["seq 1"])
        assert "no problematic sequences" in out

    def test_custom_output_stream(self, simple_report):
        sink = io.StringIO()
        Explorer(simple_report, sink).run(["problems"])
        assert "Estimated total recoverable" in sink.getvalue()
