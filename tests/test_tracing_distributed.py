"""Distributed tracing, the perturbation ledger, and the event log.

The contracts this file keeps honest:

* a ``--jobs 4`` run produces **one connected trace**: a single
  ``exec.run`` root, every span reachable from it, unique span ids
  across all contributing processes, and worker pids visible in the
  Chrome-trace export;
* report bodies stay **byte-identical** whether tracing was on or off
  — trace ids, span batches, and ledger charges live strictly outside
  the report body and its fingerprints (``meta`` is the only carrier);
* the **perturbation ledger** accounts the tool's own overhead per
  stage, merges worker-side charges into the parent session, and
  reports the calibration constants behind its estimates;
* the **event log** ring is bounded, trace-correlated, and dumped to
  disk when a stage span fails (the flight recorder);
* stage drivers flush their telemetry (probe hits, device counters,
  virtual-clock charges) even when the workload raises mid-run.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.apps.base import registry
from repro.apps.synthetic import UnnecessarySyncApp
from repro.core.cli import _load_workloads
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.jsonio import dumps_report, report_to_json, session_meta
from repro.exec import StageExecutor, WorkloadSpec
from repro.obs.context import ID_BLOCK, SpanContext, new_trace_id
from repro.obs.ledger import BUCKETS, PerturbationLedger
from repro.obs.log import EventLog
from repro.obs.tracer import Tracer

_load_workloads()

APP = "synthetic-unnecessary-sync"
PARAMS = {"iterations": 4}


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Trace context: the part that crosses process boundaries
# ----------------------------------------------------------------------
class TestSpanContext:
    def test_trace_ids_are_hex_and_unique(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for tid in ids:
            assert len(tid) == 16
            int(tid, 16)  # must parse as hex

    def test_wire_round_trip(self):
        ctx = SpanContext(trace_id="ab" * 8, parent_span_id=7,
                          id_base=ID_BLOCK)
        assert SpanContext.from_wire(ctx.to_wire()) == ctx
        assert SpanContext.from_wire(None) is None

    def test_reserved_id_blocks_never_overlap(self):
        tracer = Tracer()
        bases = [tracer.reserve_ids(ID_BLOCK) for _ in range(4)]
        assert len(set(bases)) == 4
        for a, b in zip(bases, bases[1:]):
            assert b - a >= ID_BLOCK
        # Ids minted after the reservations sit above every block.
        with tracer.span("later") as sp:
            pass
        assert sp.span_id >= bases[-1] + ID_BLOCK

    def test_current_context_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current_context().parent_span_id is None
        with tracer.span("outer") as outer:
            assert tracer.current_context().parent_span_id == outer.span_id
            with tracer.span("inner") as inner:
                ctx = tracer.current_context()
                assert ctx.parent_span_id == inner.span_id
                assert ctx.trace_id == tracer.trace_id


class TestBatchAdoption:
    def _worker_batch(self, parent: Tracer) -> dict:
        base = parent.reserve_ids(ID_BLOCK)
        worker = Tracer(trace_id=parent.trace_id, id_base=base)
        with worker.span("exec.worker"):
            with worker.span("stage.stage1_baseline"):
                pass
        return worker.export_batch(pid=4242)

    def test_adopted_spans_keep_trace_and_gain_parent(self):
        parent = Tracer()
        with parent.span("exec.run") as root:
            batch = self._worker_batch(parent)
        adopted = parent.adopt(batch, parent_id=root.span_id, base_depth=1)
        assert len(adopted) == 2
        roots = [sp for sp in adopted if sp.name == "exec.worker"]
        assert roots[0].parent_id == root.span_id
        assert roots[0].depth == 1
        assert all(sp.pid == 4242 for sp in adopted)
        # Worker ids come from the reserved block: no collision with
        # the parent's own ids.
        parent_ids = {root.span_id}
        assert parent_ids.isdisjoint({sp.span_id for sp in adopted})

    def test_adoption_rebases_wall_times_onto_parent_epoch(self):
        parent = Tracer()
        batch = self._worker_batch(parent)
        # Pretend the worker's clock origin sat 2 s after the parent's.
        batch["epoch"] = parent.epoch + 2.0
        (outer, _inner) = sorted(parent.adopt(batch),
                                 key=lambda sp: sp.depth)
        assert outer.wall_start >= 2.0
        assert outer.wall_end >= outer.wall_start

    def test_adopted_attrs_are_independent_copies(self):
        # Columnar dictionary pooling makes decoded rows share dict
        # objects; adoption must unshare them before anyone mutates.
        parent = Tracer()
        base = parent.reserve_ids(ID_BLOCK)
        worker = Tracer(trace_id=parent.trace_id, id_base=base)
        for _ in range(2):
            with worker.span("s", k="v"):
                pass
        a, b = parent.adopt(worker.export_batch())
        a.attrs["mutated"] = True
        assert "mutated" not in b.attrs


# ----------------------------------------------------------------------
# End-to-end stitching through the process pool
# ----------------------------------------------------------------------
class TestDistributedStitching:
    @pytest.fixture(scope="class")
    def session(self):
        obs.disable()
        spec = WorkloadSpec.from_params(APP, PARAMS)
        with obs.enabled() as session:
            with StageExecutor(jobs=4, use_cache=False) as executor:
                results = executor.run_workloads([spec], DiogenesConfig())
        session.results = results[spec]
        obs.disable()
        return session

    def test_single_root_and_full_reachability(self, session):
        spans = session.tracer.spans
        roots = [sp for sp in spans if sp.parent_id is None]
        assert [sp.name for sp in roots] == ["exec.run"]
        by_id = {sp.span_id: sp for sp in spans}
        for sp in spans:
            node = sp
            while node.parent_id is not None:
                assert node.parent_id in by_id, (
                    f"{sp.name}: dangling parent {node.parent_id}")
                node = by_id[node.parent_id]
            assert node.name == "exec.run"

    def test_span_ids_are_unique_across_processes(self, session):
        ids = [sp.span_id for sp in session.tracer.spans]
        assert len(ids) == len(set(ids))

    def test_worker_spans_carry_their_pid(self, session):
        pids = {sp.pid for sp in session.tracer.spans
                if sp.name == "exec.worker"}
        assert pids and None not in pids
        # Every stage ran in some worker; all five stage spans arrived.
        stage_names = {sp.name for sp in session.tracer.spans
                       if sp.name.startswith("stage.")}
        assert stage_names == {
            "stage.stage1_baseline", "stage.stage2_tracing",
            "stage.stage3_memtrace", "stage.stage3_hashing",
            "stage.stage4_syncuse"}

    def test_jsonl_lines_share_one_trace_id(self, session):
        lines = [json.loads(li)
                 for li in session.tracer.to_jsonl().splitlines()]
        assert {li["trace_id"] for li in lines} == {session.tracer.trace_id}

    def test_chrome_trace_names_worker_threads(self, session):
        trace = session.tracer.to_chrome_trace()
        assert trace["otherData"]["trace_id"] == session.tracer.trace_id
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        worker_rows = [m for m in meta
                       if m["name"] == "thread_name"
                       and m["args"]["name"].startswith("worker ")]
        assert worker_rows, "worker tids must be labelled for Perfetto"
        worker_tids = {m["tid"] for m in worker_rows}
        x_tids = {e["tid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert worker_tids <= x_tids

    def test_worker_ledgers_merge_into_the_session(self, session):
        ledger = session.ledger.as_json()
        # The workers' own tracing cost came home per job stage.
        traced = [stage for stage, accounts in ledger["stages"].items()
                  if "tracing" in accounts]
        assert traced, "worker tracing charges must merge into the parent"
        assert ledger["total_wall_seconds"] > 0.0

    def test_job_completion_events_land_in_the_ring(self, session):
        done = [e for e in session.log.tail()
                if e["event"] == "exec.job.done"]
        assert len(done) == 5  # one per stage run
        assert {e["stage"] for e in done} == {
            "stage1", "stage2", "stage3_memtrace", "stage3_hashing",
            "stage4"}
        for e in done:
            assert e["trace_id"] == session.tracer.trace_id
            assert e["cache_hit"] is False


class TestTracedByteIdentity:
    def test_traced_jobs4_report_matches_untraced_serial(self):
        serial = dumps_report(
            Diogenes(registry.create(APP, **PARAMS)).run())
        with obs.enabled() as session:
            with StageExecutor(jobs=4, use_cache=False) as executor:
                report = Diogenes(registry.create(APP, **PARAMS),
                                  executor=executor).run()
            traced = dumps_report(report)
            annotated = dumps_report(report, meta=session_meta(session))
        assert traced == serial, (
            "tracing must never perturb the report body")
        # The meta form differs only by its trailing meta key.
        body = json.loads(annotated)
        meta = body.pop("meta")
        assert json.dumps(body, indent=2) == serial
        assert meta["trace_id"] == session.tracer.trace_id
        assert meta["overhead"]["stages"]

    def test_cache_hits_adopt_no_worker_spans(self, tmp_path):
        spec = WorkloadSpec.from_params(APP, PARAMS)
        with StageExecutor(jobs=2, cache_dir=tmp_path) as executor:
            executor.run_workloads([spec], DiogenesConfig())
        with obs.enabled() as session:
            with StageExecutor(jobs=2, cache_dir=tmp_path) as executor:
                executor.run_workloads([spec], DiogenesConfig())
        assert all(sp.pid is None for sp in session.tracer.spans), (
            "a fully warm run executes nothing, so no worker spans exist")
        done = [e for e in session.log.tail()
                if e["event"] == "exec.job.done"]
        assert done and all(e["cache_hit"] for e in done)

    def test_session_meta_charges_tracing_once(self):
        with obs.enabled() as session:
            with session.tracer.span("stage.x"):
                pass
            first = session_meta(session)
            second = session_meta(session)
        cell = first["overhead"]["stages"]["(session)"]["tracing"]
        assert cell["events"] == 1
        # Calling again without new spans must not double-book.
        assert second["overhead"]["stages"]["(session)"]["tracing"] == cell


# ----------------------------------------------------------------------
# Perturbation ledger
# ----------------------------------------------------------------------
class TestPerturbationLedger:
    def test_charge_and_query(self):
        ledger = PerturbationLedger(calibrate=False)
        ledger.charge("stage1", "callbacks", 0.25, events=10)
        ledger.charge("stage1", "hashing", 0.5)
        ledger.charge("stage1", "virtual", 9.0)
        ledger.charge("stage2", "tracing", 0.125)
        assert ledger.stages() == ["stage1", "stage2"]
        assert ledger.stage_wall_seconds("stage1") == pytest.approx(0.75)
        assert ledger.total_wall_seconds() == pytest.approx(0.875), (
            "virtual seconds are simulated time and never sum with wall")

    def test_unknown_bucket_is_rejected(self):
        with pytest.raises(ValueError, match="bucket"):
            PerturbationLedger(calibrate=False).charge("s", "mystery", 1.0)

    def test_calibration_happens_lazily_on_first_estimate(self):
        ledger = PerturbationLedger(calibrate=False, iterations=50)
        assert ledger.calibration == {}
        ledger.charge_probe_hits("stage1", 100)
        assert ledger.calibration["probe_fire_seconds"] > 0.0
        cell = ledger.cells[("stage1", "callbacks")]
        assert cell.events == 100
        assert cell.seconds == pytest.approx(
            100 * ledger.calibration["probe_fire_seconds"])

    def test_zero_hits_never_triggers_calibration(self):
        ledger = PerturbationLedger(calibrate=False)
        ledger.charge_probe_hits("stage1", 0)
        ledger.charge_tracing("stage1", 0)
        assert ledger.calibration == {} and ledger.cells == {}

    def test_json_round_trip_and_merge(self):
        worker = PerturbationLedger(calibrate=False)
        worker.calibration = {"probe_fire_seconds": 1e-7,
                              "span_seconds": 2e-6, "iterations": 10}
        worker.charge("stage1", "callbacks", 0.5, events=5)
        parent = PerturbationLedger(calibrate=False)
        parent.charge("stage1", "callbacks", 0.25, events=2)
        parent.merge_json(json.loads(json.dumps(worker.as_json())))
        cell = parent.cells[("stage1", "callbacks")]
        assert cell.seconds == pytest.approx(0.75) and cell.events == 7
        # An uncalibrated parent inherits the worker's constants.
        assert parent.calibration["span_seconds"] == 2e-6

    def test_as_json_lists_only_charged_buckets(self):
        ledger = PerturbationLedger(calibrate=False)
        ledger.charge("stage1", "hashing", 0.1, events=3)
        exported = ledger.as_json()
        assert exported["stages"] == {
            "stage1": {"hashing": {"seconds": 0.1, "events": 3}}}
        assert set(BUCKETS) == {"callbacks", "record", "hashing",
                                "tracing", "analysis", "stream", "virtual"}


# ----------------------------------------------------------------------
# Event log + flight recorder
# ----------------------------------------------------------------------
class TestEventLog:
    def test_sequencing_and_tail(self):
        log = EventLog()
        log.emit("a", x=1)
        log.emit("b", trace_id="t", span_id=3)
        assert [e["event"] for e in log.tail()] == ["a", "b"]
        assert [e["seq"] for e in log.tail()] == [1, 2]
        assert log.tail(after_seq=1)[0]["event"] == "b"
        assert log.last_seq == 2 and len(log) == 2

    def test_ring_is_bounded(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("e", i=i)
        events = log.tail()
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert log.last_seq == 10  # sequence numbers never rewind

    def test_subscribers_see_each_event(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("a")
        log.emit("b")
        assert [e["event"] for e in seen] == ["a", "b"]

    def test_dump_writes_sorted_jsonl(self, tmp_path):
        log = EventLog()
        log.emit("a", x=1)
        path = tmp_path / "flight.jsonl"
        assert log.dump(str(path)) == 1
        (line,) = path.read_text().splitlines()
        parsed = json.loads(line)
        assert parsed["event"] == "a" and parsed["x"] == 1

    def test_event_helper_stamps_trace_context(self):
        with obs.enabled() as session:
            with session.tracer.span("stage.x") as sp:
                obs.event("checkpoint", k=1)
        (ev,) = session.log.tail()
        assert ev["trace_id"] == session.tracer.trace_id
        assert ev["span_id"] == sp.span_id
        assert ev["k"] == 1

    def test_event_helper_is_noop_when_off(self):
        obs.event("nobody-listening")  # must not raise


class TestFlightRecorder:
    def test_failed_stage_span_dumps_the_ring(self, tmp_path):
        flight = tmp_path / "flight"
        bundle = obs.Observability(flight_dir=str(flight))
        with obs.enabled(bundle) as session:
            obs.event("before-the-crash", step=1)
            with pytest.raises(RuntimeError):
                with session.tracer.span("stage.stage2_tracing"):
                    raise RuntimeError("boom")
        (dump,) = flight.glob("flight-*.jsonl")
        events = [json.loads(li) for li in dump.read_text().splitlines()]
        names = [e["event"] for e in events]
        assert "before-the-crash" in names and "span.error" in names
        (err,) = [e for e in events if e["event"] == "span.error"]
        assert err["error"] == "RuntimeError"
        assert err["trace_id"] == session.tracer.trace_id

    def test_non_stage_spans_do_not_dump(self, tmp_path):
        flight = tmp_path / "flight"
        bundle = obs.Observability(flight_dir=str(flight))
        with obs.enabled(bundle) as session:
            with pytest.raises(RuntimeError):
                with session.tracer.span("helper"):
                    raise RuntimeError("boom")
        assert not flight.exists()
        # The error event still lands in the ring for later dumps.
        assert [e["event"] for e in session.log.tail()] == ["span.error"]


# ----------------------------------------------------------------------
# Raising stages still flush telemetry (the satellite regression)
# ----------------------------------------------------------------------
class _BoomApp:
    """Runs a real workload, then raises — telemetry must survive."""

    name = "boom"

    def __init__(self) -> None:
        self._inner = UnnecessarySyncApp(iterations=2)

    def run(self, ctx) -> None:
        self._inner.run(ctx)
        raise RuntimeError("workload crashed after real work")


class TestRaisingStageFlush:
    def test_stage1_flushes_probes_devices_and_ledger(self):
        from repro.core.stage1_baseline import run_stage1

        with obs.enabled() as session:
            with pytest.raises(RuntimeError):
                run_stage1(_BoomApp(), DiogenesConfig())
        assert session.metrics.get("instr.probe_hits",
                                   probe="stage1-baseline").value > 0
        assert session.metrics.series("sim.ops_enqueued")
        assert "stage1_baseline" in session.ledger.stages()

    def test_stage2_flushes_on_failure(self):
        from repro.core.stage1_baseline import run_stage1
        from repro.core.stage2_tracing import run_stage2

        config = DiogenesConfig()
        stage1 = run_stage1(UnnecessarySyncApp(iterations=2), config)
        with obs.enabled() as session:
            with pytest.raises(RuntimeError):
                run_stage2(_BoomApp(), stage1, config)
        assert session.metrics.series("instr.probe_hits")
        assert session.metrics.series("sim.ops_enqueued")
        assert "stage2_tracing" in session.ledger.stages(), (
            "the virtual-clock charge must still be booked")

    def test_single_run_collection_flushes_on_failure(self):
        from repro.core.singlerun import run_single_run_collection

        with obs.enabled() as session:
            with pytest.raises(RuntimeError):
                run_single_run_collection(_BoomApp())
        assert session.metrics.get("instr.probe_hits",
                                   probe="single-run").value > 0
        assert session.metrics.series("sim.ops_enqueued")


# ----------------------------------------------------------------------
# Report meta: the only place tool-side annotations may live
# ----------------------------------------------------------------------
class TestReportMeta:
    def test_default_export_has_no_meta_key(self):
        report = Diogenes(registry.create(APP, **PARAMS)).run()
        assert "meta" not in report_to_json(report)

    def test_meta_rides_as_a_trailing_key(self):
        report = Diogenes(registry.create(APP, **PARAMS)).run()
        body = report_to_json(report, meta={"trace_id": "t" * 16})
        assert list(body)[-1] == "meta"
        assert body["meta"]["trace_id"] == "t" * 16
