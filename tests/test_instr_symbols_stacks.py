"""Unit tests for symbols (demangling-lite) and synthetic stacks."""

import pytest

from repro.instr.stacks import (
    CallStackTracker,
    Frame,
    StackInterner,
    StackTrace,
    intern_frame,
    intern_stack,
)
from repro.instr.symbols import (
    demangle_base_name,
    instruction_address,
    strip_template_params,
)


class TestInstructionAddress:
    def test_deterministic(self):
        assert instruction_address("a.cpp", 10) == instruction_address("a.cpp", 10)

    def test_distinct_locations_differ(self):
        a = instruction_address("a.cpp", 10)
        assert a != instruction_address("a.cpp", 11)
        assert a != instruction_address("b.cpp", 10)

    def test_in_text_segment_range(self):
        addr = instruction_address("x.cu", 999)
        assert 0x400000 <= addr < 0x400000 + 0x4000_0000


class TestStripTemplateParams:
    @pytest.mark.parametrize("raw,expected", [
        ("foo", "foo"),
        ("foo<int>", "foo"),
        ("foo<int, float>", "foo"),
        ("a<b<c>>", "a"),
        ("ns::foo<T>::bar<U>", "ns::foo::bar"),
        ("thrust::pair<thrust::device_ptr<double>, int>", "thrust::pair"),
        ("foo<int>(bar<float>)", "foo(bar)"),
    ])
    def test_stripping(self, raw, expected):
        assert strip_template_params(raw) == expected

    def test_operator_less_preserved(self):
        assert strip_template_params("ns::operator<") == "ns::operator<"

    def test_operator_shift_preserved(self):
        assert strip_template_params("operator<<") == "operator<<"

    def test_idempotent(self):
        s = strip_template_params("a<b>::c<d<e>>")
        assert strip_template_params(s) == s


class TestDemangleBaseName:
    @pytest.mark.parametrize("raw,expected", [
        ("cudaFree", "cudaFree"),
        ("foo<int>", "foo"),
        ("void ns::f<T>(A, B)", "ns::f"),
        ("thrust::detail::contiguous_storage<double, "
         "thrust::device_allocator<double>>::allocate",
         "thrust::detail::contiguous_storage::allocate"),
        ("void cusp::system::detail::generic::multiply<A, B>",
         "cusp::system::detail::generic::multiply"),
    ])
    def test_base_names(self, raw, expected):
        assert demangle_base_name(raw) == expected

    def test_template_instances_fold_together(self):
        a = demangle_base_name("storage<int>::free")
        b = demangle_base_name("storage<float4>::free")
        assert a == b == "storage::free"


class TestFrames:
    def test_frame_address_matches_location(self):
        f = Frame("main", "als.cpp", 738)
        assert f.address == instruction_address("als.cpp", 738)

    def test_pretty(self):
        assert Frame("f", "x.cpp", 9).pretty() == "f at x.cpp:9"


class TestStackTrace:
    def _trace(self):
        return StackTrace((
            Frame("main", "m.cpp", 1),
            Frame("work<int>", "w.cpp", 20),
        ))

    def test_leaf(self):
        assert self._trace().leaf.function == "work<int>"

    def test_empty_leaf(self):
        assert StackTrace(()).leaf is None

    def test_address_key_distinguishes_lines(self):
        a = StackTrace((Frame("f", "x.cpp", 1),)).address_key()
        b = StackTrace((Frame("f", "x.cpp", 2),)).address_key()
        assert a != b

    def test_function_key_folds_templates(self):
        a = StackTrace((Frame("work<int>", "w.cpp", 20),)).function_key()
        b = StackTrace((Frame("work<float>", "w.cpp", 99),)).function_key()
        assert a == b

    def test_pretty_innermost_first(self):
        lines = self._trace().pretty().splitlines()
        assert "work<int>" in lines[0]
        assert "main" in lines[1]


class TestCallStackTracker:
    def test_nesting_and_snapshot(self):
        tracker = CallStackTracker()
        with tracker.frame("a", "f.cpp", 1):
            with tracker.frame("b", "f.cpp", 2):
                snap = tracker.current()
                assert [f.function for f in snap] == ["a", "b"]
                assert tracker.depth == 2
            assert tracker.depth == 1
        assert tracker.depth == 0

    def test_snapshot_is_immutable_copy(self):
        tracker = CallStackTracker()
        with tracker.frame("a", "f.cpp", 1):
            snap = tracker.current()
        assert len(snap) == 1  # unaffected by the pop

    def test_exception_unwinds_frames(self):
        tracker = CallStackTracker()
        with pytest.raises(RuntimeError):
            with tracker.frame("a", "f.cpp", 1):
                raise RuntimeError("boom")
        assert tracker.depth == 0

    def test_clear_resets_live_frames(self):
        tracker = CallStackTracker()
        with tracker.frame("a", "f.cpp", 1):
            assert tracker.depth == 1
            tracker.clear()
            assert tracker.depth == 0
        # Exiting the abandoned frame must not raise or underflow.
        assert tracker.depth == 0


class TestInterning:
    def _frames(self, n=3, salt=""):
        return tuple(
            intern_frame(f"fn_{salt}{i}<T>", f"src_{salt}.cpp", 10 + i)
            for i in range(n)
        )

    def test_intern_frame_returns_equal_frames(self):
        a = intern_frame("f", "x.cpp", 1)
        b = intern_frame("f", "x.cpp", 1)
        assert a == b == Frame("f", "x.cpp", 1)

    def test_intern_stack_canonicalizes(self):
        frames = self._frames()
        assert intern_stack(frames) is intern_stack(frames)

    def test_distinct_frame_tuples_distinct_snapshots(self):
        a = intern_stack(self._frames(salt="a"))
        b = intern_stack(self._frames(salt="b"))
        assert a is not b and a.address_key() != b.address_key()

    def test_cached_keys_match_uncached(self):
        stack = intern_stack(self._frames())
        # First call populates the cache, second serves from it; both
        # must equal the structural tuple the pre-interning code built.
        for _ in range(2):
            assert stack.address_key() == tuple(
                f.address for f in stack.frames)
            assert stack.function_key() == tuple(
                f.base_name for f in stack.frames)

    def test_interned_ids_partition_like_tuple_keys(self):
        # The byte-identity argument: an id-keyed dict must produce the
        # same partition, in the same insertion order, as a tuple-keyed
        # dict over any event stream.
        stacks = [intern_stack(self._frames(salt=str(i % 5)))
                  for i in range(40)]
        by_tuple: dict = {}
        by_id: dict = {}
        for s in stacks:
            by_tuple.setdefault(s.address_key(), []).append(s)
            by_id.setdefault(s.address_id(), []).append(s)
        assert list(by_tuple.values()) == list(by_id.values())
        # And the id <-> tuple mapping is a bijection.
        pairs = {(s.address_key(), s.address_id()) for s in stacks}
        assert len({k for k, _ in pairs}) == len({i for _, i in pairs}) \
            == len(pairs)

    def test_function_ids_fold_templates_like_function_keys(self):
        a = intern_stack((intern_frame("work<int>", "w.cpp", 20),))
        b = intern_stack((intern_frame("work<float>", "w.cpp", 99),))
        assert a.function_key() == b.function_key()
        assert a.function_id() == b.function_id()
        assert a.address_id() != b.address_id()

    def test_fresh_interner_issues_dense_first_seen_ids(self):
        interner = StackInterner()
        keys = [(1, 2), (3,), (1, 2), (5, 6, 7)]
        assert [interner.address_id(k) for k in keys] == [0, 1, 0, 2]

    def test_ids_stable_across_calls(self):
        stack = intern_stack(self._frames())
        assert stack.address_id() == stack.address_id()
        assert stack.function_id() == stack.function_id()
