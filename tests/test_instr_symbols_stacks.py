"""Unit tests for symbols (demangling-lite) and synthetic stacks."""

import pytest

from repro.instr.stacks import CallStackTracker, Frame, StackTrace
from repro.instr.symbols import (
    demangle_base_name,
    instruction_address,
    strip_template_params,
)


class TestInstructionAddress:
    def test_deterministic(self):
        assert instruction_address("a.cpp", 10) == instruction_address("a.cpp", 10)

    def test_distinct_locations_differ(self):
        a = instruction_address("a.cpp", 10)
        assert a != instruction_address("a.cpp", 11)
        assert a != instruction_address("b.cpp", 10)

    def test_in_text_segment_range(self):
        addr = instruction_address("x.cu", 999)
        assert 0x400000 <= addr < 0x400000 + 0x4000_0000


class TestStripTemplateParams:
    @pytest.mark.parametrize("raw,expected", [
        ("foo", "foo"),
        ("foo<int>", "foo"),
        ("foo<int, float>", "foo"),
        ("a<b<c>>", "a"),
        ("ns::foo<T>::bar<U>", "ns::foo::bar"),
        ("thrust::pair<thrust::device_ptr<double>, int>", "thrust::pair"),
        ("foo<int>(bar<float>)", "foo(bar)"),
    ])
    def test_stripping(self, raw, expected):
        assert strip_template_params(raw) == expected

    def test_operator_less_preserved(self):
        assert strip_template_params("ns::operator<") == "ns::operator<"

    def test_operator_shift_preserved(self):
        assert strip_template_params("operator<<") == "operator<<"

    def test_idempotent(self):
        s = strip_template_params("a<b>::c<d<e>>")
        assert strip_template_params(s) == s


class TestDemangleBaseName:
    @pytest.mark.parametrize("raw,expected", [
        ("cudaFree", "cudaFree"),
        ("foo<int>", "foo"),
        ("void ns::f<T>(A, B)", "ns::f"),
        ("thrust::detail::contiguous_storage<double, "
         "thrust::device_allocator<double>>::allocate",
         "thrust::detail::contiguous_storage::allocate"),
        ("void cusp::system::detail::generic::multiply<A, B>",
         "cusp::system::detail::generic::multiply"),
    ])
    def test_base_names(self, raw, expected):
        assert demangle_base_name(raw) == expected

    def test_template_instances_fold_together(self):
        a = demangle_base_name("storage<int>::free")
        b = demangle_base_name("storage<float4>::free")
        assert a == b == "storage::free"


class TestFrames:
    def test_frame_address_matches_location(self):
        f = Frame("main", "als.cpp", 738)
        assert f.address == instruction_address("als.cpp", 738)

    def test_pretty(self):
        assert Frame("f", "x.cpp", 9).pretty() == "f at x.cpp:9"


class TestStackTrace:
    def _trace(self):
        return StackTrace((
            Frame("main", "m.cpp", 1),
            Frame("work<int>", "w.cpp", 20),
        ))

    def test_leaf(self):
        assert self._trace().leaf.function == "work<int>"

    def test_empty_leaf(self):
        assert StackTrace(()).leaf is None

    def test_address_key_distinguishes_lines(self):
        a = StackTrace((Frame("f", "x.cpp", 1),)).address_key()
        b = StackTrace((Frame("f", "x.cpp", 2),)).address_key()
        assert a != b

    def test_function_key_folds_templates(self):
        a = StackTrace((Frame("work<int>", "w.cpp", 20),)).function_key()
        b = StackTrace((Frame("work<float>", "w.cpp", 99),)).function_key()
        assert a == b

    def test_pretty_innermost_first(self):
        lines = self._trace().pretty().splitlines()
        assert "work<int>" in lines[0]
        assert "main" in lines[1]


class TestCallStackTracker:
    def test_nesting_and_snapshot(self):
        tracker = CallStackTracker()
        with tracker.frame("a", "f.cpp", 1):
            with tracker.frame("b", "f.cpp", 2):
                snap = tracker.current()
                assert [f.function for f in snap] == ["a", "b"]
                assert tracker.depth == 2
            assert tracker.depth == 1
        assert tracker.depth == 0

    def test_snapshot_is_immutable_copy(self):
        tracker = CallStackTracker()
        with tracker.frame("a", "f.cpp", 1):
            snap = tracker.current()
        assert len(snap) == 1  # unaffected by the pop

    def test_exception_unwinds_frames(self):
        tracker = CallStackTracker()
        with pytest.raises(RuntimeError):
            with tracker.frame("a", "f.cpp", 1):
                raise RuntimeError("boom")
        assert tracker.depth == 0

    def test_clear_resets_live_frames(self):
        tracker = CallStackTracker()
        with tracker.frame("a", "f.cpp", 1):
            assert tracker.depth == 1
            tracker.clear()
            assert tracker.depth == 0
        # Exiting the abandoned frame must not raise or underflow.
        assert tracker.depth == 0
