"""The columnar EventTable and its contract with the row world.

Half of this file pins the round trips `docs/columnar_format.md`
promises (events → table → events, table → wire batch → table, native
construction, packed-site identity).  The other half is property-based:
on randomized workloads, the columnar analysis engine must agree with
the row-by-row reference *exactly* — same problems, same benefits,
same groups, same sequences.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.analysis import analyze
from repro.core.grouping import (
    group_by_api,
    group_folded_function,
    group_single_point,
)
from repro.core.records import (
    FirstUseRecord,
    SiteKey,
    Stage1Data,
    Stage2Data,
    Stage3Data,
    Stage4Data,
    SyncUseRecord,
    TraceEvent,
    TransferHashRecord,
)
from repro.core.sequences import find_sequences
from repro.exec.columnar import decode_records
from repro.exec.table import EventTable, pack_site, pack_site_key
from repro.instr.stacks import intern_frame, intern_stack


def _stack(tag: int, depth: int = 2):
    return intern_stack(tuple(
        intern_frame(f"fn_{tag}_{d}", "app.cpp", 100 * tag + d)
        for d in range(depth)))


def _event(i: int, stack, occurrence: int, *, is_sync=False,
           is_transfer=False, t_entry=None, duration=50e-6,
           sync_wait=0.0, direction="", nbytes=0,
           api_name="cudaLaunchKernel") -> TraceEvent:
    t_entry = i * 1e-3 if t_entry is None else t_entry
    return TraceEvent(
        seq=i, api_name=api_name, stack=stack,
        site=SiteKey(stack.address_key(), occurrence),
        t_entry=t_entry, t_exit=t_entry + duration,
        sync_wait=sync_wait, is_sync=is_sync, is_transfer=is_transfer,
        nbytes=nbytes, direction=direction,
    )


def _mixed_events() -> list[TraceEvent]:
    a, b = _stack(1), _stack(2)
    return [
        _event(0, a, 0, api_name="cudaLaunchKernel"),
        _event(1, b, 0, is_sync=True, sync_wait=30e-6,
               api_name="cudaDeviceSynchronize"),
        _event(2, a, 1, is_transfer=True, nbytes=4096, direction="h2d",
               api_name="cudaMemcpy"),
        _event(3, b, 1, is_sync=True, is_transfer=True, nbytes=64,
               direction="d2h", sync_wait=10e-6, api_name="cudaMemcpy"),
    ]


class TestRowRoundTrips:
    def test_from_events_to_events_is_identity(self):
        events = _mixed_events()
        table = EventTable.from_events(events)
        assert table.to_events() == events

    def test_pools_are_first_seen_order(self):
        table = EventTable.from_events(_mixed_events())
        assert table.api_pool == [
            "cudaLaunchKernel", "cudaDeviceSynchronize", "cudaMemcpy"]
        assert table.direction_pool == ["", "h2d", "d2h"]
        assert len(table.stack_pool) == 2

    def test_column_dtypes(self):
        table = EventTable.from_events(_mixed_events())
        assert table.seq.dtype == np.int64
        assert table.nbytes.dtype == np.int64
        assert table.occurrence.dtype == np.int64
        assert table.site_address_ids.dtype == np.int64
        assert table.t_entry.dtype == np.float64
        assert table.t_exit.dtype == np.float64
        assert table.sync_wait.dtype == np.float64
        assert table.is_sync.dtype == bool
        assert table.is_transfer.dtype == bool
        assert table.api_codes.dtype == np.int32
        assert table.stack_codes.dtype == np.int32
        assert table.direction_codes.dtype == np.int32

    def test_slice_shares_pools_and_round_trips(self):
        events = _mixed_events()
        table = EventTable.from_events(events)
        part = table.slice(1, 3)
        assert part.to_events() == events[1:3]
        assert part.api_pool is not None
        assert part.stack_pool == table.stack_pool

    def test_empty_table(self):
        table = EventTable.from_events([])
        assert len(table) == 0
        assert table.to_events() == []
        assert table.packed_sites().tolist() == []
        assert table.stack_address_ids().tolist() == []
        assert table.function_ids().tolist() == []

    def test_column_length_mismatch_rejected(self):
        table = EventTable.from_events(_mixed_events())
        with pytest.raises(ValueError, match="length"):
            EventTable(
                seq=table.seq, t_entry=table.t_entry[:2],
                t_exit=table.t_exit, sync_wait=table.sync_wait,
                is_sync=table.is_sync, is_transfer=table.is_transfer,
                nbytes=table.nbytes, api_codes=table.api_codes,
                api_pool=table.api_pool, stack_codes=table.stack_codes,
                stack_pool=table.stack_pool, occurrence=table.occurrence,
                site_address_ids=table.site_address_ids,
                direction_codes=table.direction_codes,
                direction_pool=table.direction_pool,
            )


class TestWireBatchRoundTrips:
    def test_to_batch_matches_row_serialization(self):
        events = _mixed_events()
        batch = EventTable.from_events(events).to_batch()
        assert batch["__columnar__"] == 1
        assert batch["count"] == len(events)
        assert decode_records(batch) == [e.to_json() for e in events]

    def test_from_batch_round_trips(self):
        events = _mixed_events()
        batch = EventTable.from_events(events).to_batch()
        rebuilt = EventTable.from_batch(batch)
        assert rebuilt.to_events() == events
        assert rebuilt.packed_sites().tolist() == \
            EventTable.from_events(events).packed_sites().tolist()

    def test_from_batch_unpooled_columns(self):
        # Hand-built batches may carry composite columns un-pooled
        # ("values" instead of "dict"/"codes"); decoding must agree.
        events = _mixed_events()[:2]
        batch = EventTable.from_events(events).to_batch()
        cols = dict(zip(batch["keys"], batch["columns"]))
        for name in ("stack", "site"):
            col = cols[name]
            col_idx = batch["keys"].index(name)
            values = [col["dict"][c] for c in col["codes"]]
            batch["columns"][col_idx] = {"values": values}
        assert EventTable.from_batch(batch).to_events() == events

    def test_from_batch_accepts_dict_encoded_scalars(self):
        # Scalar columns may arrive dictionary-encoded too (a foreign
        # encoder is allowed to pool anything); decode must agree.
        events = _mixed_events()
        batch = EventTable.from_events(events).to_batch()
        idx = batch["keys"].index("api_name")
        values = batch["columns"][idx]["values"]
        pool = list(dict.fromkeys(values))
        batch["columns"][idx] = {
            "dict": pool, "codes": [pool.index(v) for v in values]}
        assert EventTable.from_batch(batch).to_events() == events

    def test_from_batch_rejects_non_batches(self):
        with pytest.raises(ValueError, match="not a columnar batch"):
            EventTable.from_batch({"keys": [], "columns": []})
        foreign = {"__columnar__": 1, "keys": ["a"], "count": 1,
                   "columns": [{"values": [1]}]}
        with pytest.raises(ValueError, match="not a stage-2 event batch"):
            EventTable.from_batch(foreign)


class TestSiteIdentity:
    def test_pack_site_layout(self):
        assert pack_site(3, 7) == (3 << 32) | 7

    def test_pack_site_range_enforced(self):
        with pytest.raises(ValueError, match="packing range"):
            pack_site(1, -1)
        with pytest.raises(ValueError, match="packing range"):
            pack_site(1, 1 << 32)

    def test_packed_sites_refuse_overflowing_occurrence(self):
        stacks = [_stack(8)]
        table = EventTable.from_columns(
            t_entry=[0.0], t_exit=[1e-4], sync_wait=[0.0],
            is_sync=[False], is_transfer=[False],
            api_codes=np.array([0], dtype=np.int32), api_pool=["x"],
            stack_codes=np.array([0], dtype=np.int32), stack_pool=stacks,
            occurrence=[1 << 32],
        )
        with pytest.raises(ValueError, match="packing range"):
            table.packed_sites()

    def test_sites_length_mismatch_rejected(self):
        events = _mixed_events()
        table = EventTable.from_events(events)
        with pytest.raises(ValueError, match="sites length"):
            EventTable(
                seq=table.seq, t_entry=table.t_entry, t_exit=table.t_exit,
                sync_wait=table.sync_wait, is_sync=table.is_sync,
                is_transfer=table.is_transfer, nbytes=table.nbytes,
                api_codes=table.api_codes, api_pool=table.api_pool,
                stack_codes=table.stack_codes, stack_pool=table.stack_pool,
                occurrence=table.occurrence,
                site_address_ids=table.site_address_ids,
                direction_codes=table.direction_codes,
                direction_pool=table.direction_pool,
                sites=[events[0].site],
            )

    def test_packed_sites_match_pack_site_key(self):
        events = _mixed_events()
        table = EventTable.from_events(events)
        assert table.packed_sites().tolist() == [
            pack_site_key(e.site) for e in events]

    def test_site_at_lazy_for_native_tables(self):
        stacks = [_stack(9)]
        table = EventTable.from_columns(
            t_entry=[0.0, 1e-3], t_exit=[1e-4, 1.1e-3],
            sync_wait=[0.0, 0.0], is_sync=[False, True],
            is_transfer=[False, False],
            api_codes=np.array([0, 0], dtype=np.int32),
            api_pool=["cudaFree"],
            stack_codes=np.array([0, 0], dtype=np.int32),
            stack_pool=stacks, occurrence=[0, 1],
        )
        assert table.site_at(1) == SiteKey(stacks[0].address_key(), 1)
        assert table.to_events()[0].site == \
            SiteKey(stacks[0].address_key(), 0)

    def test_interned_id_columns(self):
        events = _mixed_events()
        table = EventTable.from_events(events)
        aids = table.stack_address_ids()
        fids = table.function_ids()
        assert len(aids) == len(events) and len(fids) == len(events)
        # Same stack → same ids, different stacks → different ids.
        assert aids[0] == aids[2] and aids[1] == aids[3]
        assert aids[0] != aids[1]


class TestStage2Wrapping:
    def test_from_table_skips_row_materialization(self):
        events = _mixed_events()
        table = EventTable.from_events(events)
        stage2 = Stage2Data.from_table(table, execution_time=1.0)
        assert stage2.events == []
        assert stage2.table() is table

    def test_table_cached_per_events_list(self):
        stage2 = Stage2Data(execution_time=1.0, events=_mixed_events())
        assert stage2.table() is stage2.table()


# ----------------------------------------------------------------------
# Property tests: columnar engine == row engine on random workloads
# ----------------------------------------------------------------------
_STACKS = [_stack(100 + i) for i in range(4)]

_event_specs = st.tuples(
    st.integers(0, len(_STACKS) - 1),              # stack index
    st.sampled_from(["sync", "transfer", "both", "plain"]),
    st.sampled_from([0.0, 20e-6, 150e-6]),         # gap before entry
    st.sampled_from([10e-6, 80e-6, 300e-6]),       # duration
    st.sampled_from(["unused", "required", "silent"]),
    st.sampled_from([0.0, 30e-6, 80e-6, 400e-6]),  # stage-4 delay
    st.booleans(),                                 # duplicate transfer
)

workload_specs = st.lists(_event_specs, min_size=1, max_size=40)


def _build_stages(specs):
    events, sync_uses, hashes, first_uses = [], [], [], []
    occurrence = {}
    t = 0.0
    for i, (s_idx, kind, gap, dur, verdict, delay, dup) in enumerate(specs):
        is_sync = kind in ("sync", "both")
        is_transfer = kind in ("transfer", "both")
        stack = _STACKS[s_idx]
        occ = occurrence.get(s_idx, 0)
        occurrence[s_idx] = occ + 1
        api = ("cudaMemcpy" if is_transfer
               else "cudaDeviceSynchronize" if is_sync
               else "cudaLaunchKernel")
        event = _event(i, stack, occ, is_sync=is_sync,
                       is_transfer=is_transfer, t_entry=t + gap,
                       duration=dur, sync_wait=dur * 0.5 if is_sync else 0.0,
                       direction="h2d" if is_transfer else "",
                       nbytes=4096 if is_transfer else 0, api_name=api)
        t = event.t_exit
        events.append(event)
        if is_sync and verdict != "silent":
            required = verdict == "required"
            sync_uses.append(SyncUseRecord(site=event.site, api_name=api,
                                           required=required))
            if required and delay:
                first_uses.append(FirstUseRecord(site=event.site,
                                                 first_use_delay=delay))
        if is_transfer:
            hashes.append(TransferHashRecord(
                site=event.site, api_name=api, nbytes=4096,
                direction="h2d", digest="d", duplicate=dup))
    execution_time = t + 100e-6
    return (Stage1Data(execution_time=execution_time, wait_symbol="w"),
            Stage2Data(execution_time=execution_time, events=events),
            Stage3Data(execution_time=execution_time, sync_uses=sync_uses,
                       transfer_hashes=hashes),
            Stage4Data(execution_time=execution_time, first_uses=first_uses))


def _problem_tuples(result):
    return [(p.node_index, p.kind, p.est_benefit, p.api_name, p.site,
             p.duration, p.first_use_time) for p in result.problems]


class TestEngineEquivalence:
    @given(workload_specs)
    @settings(max_examples=80, deadline=None)
    def test_round_trips_hold_for_random_workloads(self, specs):
        events = _build_stages(specs)[1].events
        table = EventTable.from_events(events)
        assert table.to_events() == events
        assert EventTable.from_batch(table.to_batch()).to_events() == events

    @given(workload_specs)
    @settings(max_examples=60, deadline=None)
    def test_problems_and_benefits_identical(self, specs):
        stage1, stage2, stage3, stage4 = _build_stages(specs)
        col = analyze(stage1, stage2, stage3, stage4, engine="columnar")
        ref = analyze(stage1, stage2, stage3, stage4, engine="rows")
        assert _problem_tuples(col) == _problem_tuples(ref)
        assert col.total_benefit == ref.total_benefit
        assert col.benefit.final_durations == ref.benefit.final_durations

    @given(workload_specs)
    @settings(max_examples=40, deadline=None)
    def test_groupings_and_sequences_identical(self, specs):
        stage1, stage2, stage3, stage4 = _build_stages(specs)
        col = analyze(stage1, stage2, stage3, stage4, engine="columnar")
        ref = analyze(stage1, stage2, stage3, stage4, engine="rows")

        def group_view(groups):
            return [(g.kind, g.label, g.total_benefit,
                     [m.node_index for m in g.members]) for g in groups]

        for grouper in (group_by_api, group_single_point,
                        group_folded_function):
            assert group_view(grouper(col)) == group_view(grouper(ref))

        def seq_view(sequences):
            return [([(e.api_name, e.file, e.line, e.kinds)
                      for e in s.entries],
                     s.est_benefit,
                     [[op.node_indices for op in inst]
                      for inst in s.instances]) for s in sequences]

        assert seq_view(find_sequences(col)) == seq_view(find_sequences(ref))
