"""Property-based tests for host memory and the dedup store."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SiteKey
from repro.core.stage3_memtrace import DedupStore, hash_payload
from repro.hostmem.allocator import HostAddressSpace
from repro.hostmem.buffer import HostBuffer


class TestBufferRoundTrips:
    @given(st.integers(min_value=1, max_value=256),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=100, deadline=None)
    def test_byte_roundtrip_at_random_offsets(self, size, offset_seed):
        space = HostAddressSpace()
        buf = HostBuffer(space, 512, dtype=np.uint8)
        offset = offset_seed % (buf.nbytes - size + 1)
        payload = np.arange(size, dtype=np.uint8)
        buf.write(payload, offset=offset)
        back = np.asarray(buf.read(offset, size))
        assert np.array_equal(back, payload)

    @given(st.lists(st.tuples(st.integers(0, 63), st.integers(1, 64)),
                    min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_writes_never_bleed_outside_their_range(self, writes):
        space = HostAddressSpace()
        buf = HostBuffer(space, 128, dtype=np.uint8)
        shadow = np.zeros(128, dtype=np.uint8)
        for start, size in writes:
            size = min(size, 128 - start)
            if size <= 0:
                continue
            data = np.full(size, (start + size) % 251, dtype=np.uint8)
            buf.write(data, offset=start)
            shadow[start:start + size] = data
        assert np.array_equal(np.asarray(buf.read()), shadow)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_hook_counts_match_accesses(self, accesses):
        space = HostAddressSpace()
        events = []
        space.hooks.add(events.append)
        buf = HostBuffer(space, 64)
        for i in range(accesses):
            if i % 2:
                buf.read()
            else:
                buf.write(np.array([float(i)]))
        assert len(events) == accesses


class TestHashingProperties:
    @given(st.binary(min_size=0, max_size=512))
    @settings(max_examples=150, deadline=None)
    def test_hash_is_content_deterministic(self, blob):
        a = np.frombuffer(blob, dtype=np.uint8)
        b = np.frombuffer(bytes(blob), dtype=np.uint8)
        assert hash_payload(a) == hash_payload(b)

    @given(st.binary(min_size=1, max_size=256), st.integers(0, 255))
    @settings(max_examples=150, deadline=None)
    def test_single_byte_flip_changes_hash(self, blob, position):
        original = bytearray(blob)
        flipped = bytearray(blob)
        idx = position % len(flipped)
        flipped[idx] ^= 0xFF
        a = hash_payload(np.frombuffer(bytes(original), dtype=np.uint8))
        b = hash_payload(np.frombuffer(bytes(flipped), dtype=np.uint8))
        assert a != b

    @given(st.lists(st.tuples(st.sampled_from(["x", "y", "z"]),
                              st.integers(0, 3)),
                    min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_dedup_store_flags_exactly_repeats(self, transfers):
        store = DedupStore(policy="content")
        seen: set[str] = set()
        for i, (digest, dst) in enumerate(transfers):
            verdict = store.check(digest, dst, SiteKey((i,), 0))
            if digest in seen:
                assert verdict is not None
            else:
                assert verdict is None
            seen.add(digest)

    @given(st.lists(st.tuples(st.sampled_from(["x", "y"]),
                              st.integers(0, 2)),
                    min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_strict_policy_keys_on_destination_too(self, transfers):
        store = DedupStore(policy="content+dst")
        seen: set[tuple] = set()
        for i, (digest, dst) in enumerate(transfers):
            verdict = store.check(digest, dst, SiteKey((i,), 0))
            assert (verdict is not None) == ((digest, dst) in seen)
            seen.add((digest, dst))
