"""Unit tests for the cost model, machine, and timeline recorder."""

import pytest

from repro.sim.costs import CostModel, CostParameters, KernelCost
from repro.sim.machine import Machine, MachineConfig
from repro.sim.trace import CpuInterval, TimelineRecorder


class TestCostModel:
    def setup_method(self):
        self.model = CostModel()
        self.p = self.model.params

    def test_explicit_kernel_duration_wins(self):
        assert self.model.kernel_duration(KernelCost(duration=1e-3)) == 1e-3

    def test_negative_explicit_duration_rejected(self):
        with pytest.raises(ValueError):
            self.model.kernel_duration(KernelCost(duration=-1.0))

    def test_kernel_min_duration_floor(self):
        tiny = self.model.kernel_duration(KernelCost(flops=1.0))
        assert tiny == self.p.kernel_min_duration

    def test_compute_bound_kernel(self):
        flops = self.p.device_gflops * 1e9  # one second of flops
        assert self.model.kernel_duration(KernelCost(flops=flops)) == \
            pytest.approx(1.0)

    def test_memory_bound_kernel(self):
        nbytes = self.p.device_mem_bandwidth  # one second of traffic
        cost = KernelCost(flops=1.0, bytes_moved=nbytes)
        assert self.model.kernel_duration(cost) == pytest.approx(1.0)

    def test_roofline_takes_binding_term(self):
        cost = KernelCost(flops=self.p.device_gflops * 1e9,
                          bytes_moved=self.p.device_mem_bandwidth * 2)
        assert self.model.kernel_duration(cost) == pytest.approx(2.0)

    @pytest.mark.parametrize("direction", ["h2d", "d2h", "d2d"])
    def test_copy_duration_scales_with_bytes(self, direction):
        small = self.model.copy_duration(1024, direction)
        large = self.model.copy_duration(1024 * 1024, direction)
        assert large > small > self.p.copy_latency

    def test_zero_byte_copy_costs_latency(self):
        assert self.model.copy_duration(0, "h2d") == self.p.copy_latency

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            self.model.copy_duration(10, "d2x")

    def test_negative_copy_size_rejected(self):
        with pytest.raises(ValueError):
            self.model.copy_duration(-1, "h2d")

    def test_memset_duration(self):
        d = self.model.memset_duration(1 << 20)
        assert d == pytest.approx(
            self.p.memset_latency + (1 << 20) / self.p.memset_bandwidth)

    def test_host_memop_duration(self):
        assert self.model.host_memop_duration(self.p.host_memory_bandwidth) \
            == pytest.approx(1.0)

    def test_custom_parameters_flow_through(self):
        model = CostModel(CostParameters(h2d_bandwidth=1.0, copy_latency=0.0))
        assert model.copy_duration(5, "h2d") == pytest.approx(5.0)


class TestMachine:
    def test_cpu_work_advances_clock_and_records(self):
        m = Machine()
        m.cpu_work(0.5, "compute")
        assert m.now == 0.5
        assert m.timeline.total("work") == 0.5
        assert m.timeline.total("work", "compute") == 0.5

    def test_cpu_api_recorded_separately(self):
        m = Machine()
        m.cpu_api(0.1, "cudaMalloc")
        assert m.timeline.total("api") == pytest.approx(0.1)
        assert m.timeline.total("work") == 0.0

    def test_wait_until_future(self):
        m = Machine()
        waited = m.cpu_wait_until(2.0, "sync")
        assert waited == 2.0
        assert m.now == 2.0
        assert m.timeline.total("wait") == 2.0

    def test_wait_until_past_is_free(self):
        m = Machine()
        m.cpu_work(3.0)
        assert m.cpu_wait_until(1.0, "sync") == 0.0
        assert m.timeline.total("wait") == 0.0

    def test_timeline_recording_can_be_disabled(self):
        m = Machine(MachineConfig(record_cpu_timeline=False))
        m.cpu_work(1.0)
        m.cpu_wait_until(5.0, "sync")
        assert m.timeline.cpu_intervals == []
        assert m.now == 5.0


class TestTimelineRecorder:
    def test_rejects_backwards_interval(self):
        rec = TimelineRecorder()
        with pytest.raises(ValueError):
            rec.record_cpu(2.0, 1.0, "work", "x")

    def test_rejects_unknown_category(self):
        rec = TimelineRecorder()
        with pytest.raises(ValueError):
            rec.record_cpu(0.0, 1.0, "sleep", "x")

    def test_by_label_aggregation(self):
        rec = TimelineRecorder()
        rec.record_cpu(0.0, 1.0, "api", "a")
        rec.record_cpu(1.0, 3.0, "api", "a")
        rec.record_cpu(3.0, 4.0, "api", "b")
        assert rec.by_label("api") == {"a": 3.0, "b": 1.0}

    def test_interval_duration(self):
        assert CpuInterval(1.0, 2.5, "work", "x").duration == 1.5

    def test_intervals_filtered_by_category(self):
        rec = TimelineRecorder()
        rec.record_cpu(0.0, 1.0, "work", "a")
        rec.record_cpu(1.0, 2.0, "wait", "b")
        assert [iv.label for iv in rec.intervals("wait")] == ["b"]
