"""Fleet mode tests (`repro.fleet`): coordinator + worker scale-out.

The contracts that keep the fleet honest:

* a report produced by a remote worker is **byte-identical** to the
  serial CLI report — scale-out changes throughput, never bytes;
* jobs are leased, not handed over: a worker that stops heartbeating
  loses its lease and the job is redelivered, exactly once resolved;
* duplicate submissions across nodes are suppressed through the
  content-addressed store and the consistent-hash ring;
* a saturated queue answers 429 + Retry-After and the client honours
  it (jittered exponential backoff on connection errors too);
* SIGTERM drains gracefully: in-flight work finishes, exit code 0.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

import repro.obs as obs
from repro.apps.base import registry
from repro.core.cli import _load_workloads
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.jsonio import dumps_report
from repro.exec.columnar import encode_tree
from repro.exec.fingerprint import config_to_json
from repro.exec.jobs import WorkloadSpec
from repro.fleet import FleetCoordinator, HashRing, WorkerNode
from repro.fleet.coordinator import stitch_trace
from repro.service import (
    DONE,
    FAILED,
    RUNNING,
    SUBMITTED,
    JobQueue,
    ReportStore,
    ServiceClient,
    ServiceDaemon,
    ServiceError,
    report_identity,
)

_load_workloads()

APP = "synthetic-unnecessary-sync"
PARAMS = {"iterations": 4}
APP_B = "synthetic-misplaced-sync"
PARAMS_B = {"iterations": 3}

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
SRC_DIR = REPO_ROOT / "src"

_serial_cache: dict[tuple, str] = {}


def _serial_json(name: str, params: dict) -> str:
    cache_key = (name, tuple(sorted(params.items())))
    if cache_key not in _serial_cache:
        report = Diogenes(registry.create(name, **params)).run()
        _serial_cache[cache_key] = dumps_report(report)
    return _serial_cache[cache_key]


def _metric_value(text: str, name: str, **labels) -> float | None:
    for line in text.splitlines():
        match = re.match(rf"{re.escape(name)}(?:{{(.*)}})? (.+)$", line)
        if not match:
            continue
        found = dict(re.findall(r'(\w+)="([^"]*)"', match.group(1) or ""))
        if all(found.get(k) == str(v) for k, v in labels.items()):
            return float(match.group(2))
    return None


@pytest.fixture(autouse=True)
def _observability_reset():
    obs.disable()
    yield
    obs.disable()


@contextmanager
def running_daemon(data_dir, **kwargs):
    daemon = ServiceDaemon(data_dir, **kwargs)
    thread = threading.Thread(target=daemon.run, kwargs={"port": 0},
                              daemon=True)
    thread.start()
    assert daemon.started.wait(10), "daemon failed to start"
    client = ServiceClient(f"http://127.0.0.1:{daemon.bound_port}")
    try:
        yield client, daemon
    finally:
        try:
            client.shutdown()
        except ServiceError:
            pass
        thread.join(15)
        assert not thread.is_alive(), "daemon did not shut down cleanly"


def _run_worker(url, worker_id, max_jobs, **kwargs):
    """Run one WorkerNode to completion in a thread; returns (node, thread)."""
    node = WorkerNode(url, worker_id=worker_id, use_cache=False, **kwargs)
    thread = threading.Thread(target=node.run, kwargs={"max_jobs": max_jobs},
                              daemon=True)
    thread.start()
    return node, thread


# ----------------------------------------------------------------------
# Consistent-hash ring
# ----------------------------------------------------------------------
class TestHashRing:
    def test_deterministic_across_instances(self):
        a, b = HashRing(), HashRing()
        for node in ("w1", "w2", "w3"):
            a.add(node)
        for node in ("w3", "w1", "w2"):  # insertion order must not matter
            b.add(node)
        keys = [f"key-{i}" for i in range(200)]
        assert [a.node_for(k) for k in keys] == [b.node_for(k) for k in keys]

    def test_spread_is_roughly_uniform(self):
        ring = HashRing()
        for node in ("w1", "w2", "w3"):
            ring.add(node)
        owners = [ring.node_for(f"key-{i}") for i in range(3000)]
        for node in ("w1", "w2", "w3"):
            share = owners.count(node) / len(owners)
            assert 0.15 < share < 0.55, f"{node} owns {share:.0%}"

    def test_adding_a_node_remaps_a_minority(self):
        ring = HashRing()
        for node in ("w1", "w2", "w3"):
            ring.add(node)
        keys = [f"key-{i}" for i in range(2000)]
        before = {k: ring.node_for(k) for k in keys}
        ring.add("w4")
        moved = sum(1 for k in keys if ring.node_for(k) != before[k])
        # Theory says ~1/4 of the key space moves; allow slack, but a
        # naive modulo hash would move ~3/4.
        assert moved / len(keys) < 0.45
        # Every moved key landed on the new node, nowhere else.
        assert all(ring.node_for(k) == "w4" for k in keys
                   if ring.node_for(k) != before[k])

    def test_removing_a_node_only_reassigns_its_keys(self):
        ring = HashRing()
        for node in ("w1", "w2", "w3"):
            ring.add(node)
        keys = [f"key-{i}" for i in range(1000)]
        before = {k: ring.node_for(k) for k in keys}
        ring.remove("w2")
        for k in keys:
            if before[k] != "w2":
                assert ring.node_for(k) == before[k]
            else:
                assert ring.node_for(k) in ("w1", "w3")

    def test_liveness_fallback_walks_past_dead_nodes(self):
        ring = HashRing()
        for node in ("w1", "w2"):
            ring.add(node)
        key = "some-report-key"
        owner = ring.node_for(key)
        other = "w2" if owner == "w1" else "w1"
        assert ring.node_for(key, alive={owner, other}) == owner
        assert ring.node_for(key, alive={other}) == other
        assert ring.node_for(key, alive=set()) is None

    def test_empty_ring_and_membership(self):
        ring = HashRing()
        assert ring.node_for("k") is None
        ring.add("w1")
        ring.add("w1")  # idempotent
        assert "w1" in ring and len(ring) == 1
        ring.remove("w1")
        ring.remove("w1")  # idempotent
        assert ring.node_for("k") is None and ring.nodes() == []

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError, match="replicas"):
            HashRing(replicas=0)


# ----------------------------------------------------------------------
# Client retry behaviour against a flaky stub server
# ----------------------------------------------------------------------
class _FlakyStub:
    """Raw-socket stub: misbehaves for the first N connections, then
    answers 200 JSON.  ``mode`` selects the misbehaviour: ``close``
    (connection reset — a crashed/restarting daemon) or ``429``
    (backpressure with a Retry-After header)."""

    def __init__(self, failures: int, mode: str = "close",
                 retry_after: str = "0") -> None:
        self.failures = failures
        self.mode = mode
        self.retry_after = retry_after
        self.connections = 0
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.url = f"http://127.0.0.1:{self._sock.getsockname()[1]}"
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            self.connections += 1
            with conn:
                if self.connections <= self.failures:
                    if self.mode == "close":
                        conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                                        b"\x01\x00\x00\x00\x00\x00\x00\x00")
                        continue  # reset on close, nothing read
                    conn.recv(65536)
                    conn.sendall(
                        b"HTTP/1.1 429 Too Many Requests\r\n"
                        b"Content-Type: application/json\r\n"
                        b"Retry-After: " + self.retry_after.encode() +
                        b"\r\nContent-Length: 26\r\nConnection: close\r\n"
                        b"\r\n{\"error\": \"queue is full\"}")
                    continue
                conn.recv(65536)
                conn.sendall(b"HTTP/1.1 200 OK\r\n"
                             b"Content-Type: application/json\r\n"
                             b"Content-Length: 14\r\n"
                             b"Connection: close\r\n\r\n{\"status\": 1}\n")

    def close(self) -> None:
        self._sock.close()
        self._thread.join(5)


class TestClientRetries:
    def test_retries_connection_errors_until_success(self):
        stub = _FlakyStub(failures=2, mode="close")
        try:
            client = ServiceClient(stub.url, retries=4)
            assert client.health() == {"status": 1}
            assert stub.connections == 3
        finally:
            stub.close()

    def test_retries_429_honouring_retry_after(self):
        stub = _FlakyStub(failures=2, mode="429", retry_after="0.2")
        try:
            client = ServiceClient(stub.url, retries=4)
            t0 = time.monotonic()
            assert client.health() == {"status": 1}
            # Two 429s, each instructing a >= 0.2s wait.
            assert time.monotonic() - t0 >= 0.4
            assert stub.connections == 3
        finally:
            stub.close()

    def test_retry_budget_exhausts_and_surfaces_the_429(self):
        stub = _FlakyStub(failures=99, mode="429", retry_after="0")
        try:
            client = ServiceClient(stub.url, retries=2)
            with pytest.raises(ServiceError) as err:
                client.health()
            assert err.value.status == 429
            assert err.value.retry_after == 0.0
            assert stub.connections == 3  # initial try + 2 retries
        finally:
            stub.close()

    def test_non_transient_errors_are_not_retried(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, _):
            with pytest.raises(ServiceError) as err:
                client.job("job-nope")
            assert err.value.status == 404

    def test_retries_zero_disables_retrying(self):
        stub = _FlakyStub(failures=1, mode="close")
        try:
            client = ServiceClient(stub.url, retries=0)
            with pytest.raises(ServiceError):
                client.health()
            assert stub.connections == 1
        finally:
            stub.close()


# ----------------------------------------------------------------------
# Coordinator protocol over HTTP: pull, execute, push, stitch
# ----------------------------------------------------------------------
class TestFleetEndToEnd:
    @pytest.mark.parametrize("backend", ["file", "sqlite"])
    def test_worker_report_is_byte_identical_to_serial(self, tmp_path,
                                                       backend):
        serial = _serial_json(APP, PARAMS)
        with running_daemon(tmp_path / "svc", workers=0,
                            backend=backend) as (client, _):
            job = client.submit(APP, PARAMS)["job"]
            node, thread = _run_worker(client.base_url, "w1", max_jobs=1)
            thread.join(60)
            final = client.wait(job["id"], timeout=30)
            assert final["state"] == DONE and final["worker"] == "w1"
            fetched = client.report(final["report_key"])
            assert json.dumps(fetched, indent=2) == serial
            assert node.jobs_completed == 1

    def test_trace_is_one_tree_rooted_at_service_job(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, _):
            job = client.submit(APP, PARAMS)["job"]
            _, thread = _run_worker(client.base_url, "w1", max_jobs=1)
            thread.join(60)
            client.wait(job["id"], timeout=30)
            trace = client.trace(job["id"])
            spans = trace["spans"]
            roots = [s for s in spans if s["parent_id"] is None]
            assert [r["name"] for r in roots] == ["service.job"]
            by_id = {s["span_id"]: s for s in spans}
            assert len(by_id) == len(spans), "span ids must be unique"
            worker_spans = [s for s in spans
                            if s["name"] == "fleet.worker.job"]
            assert len(worker_spans) == 1
            assert worker_spans[0]["parent_id"] == roots[0]["span_id"]
            assert worker_spans[0]["pid"] is not None  # its own trace lane
            # Every span reaches the root by parent links.
            for span in spans:
                hops, cursor = 0, span
                while cursor["parent_id"] is not None and hops < 100:
                    cursor = by_id[cursor["parent_id"]]
                    hops += 1
                assert cursor is roots[0]
            # The root covers its adopted children.
            assert all(roots[0]["wall_end"] >= s["wall_end"]
                       for s in spans if s["wall_end"] is not None)
            assert trace["worker"] == "w1"

    def test_duplicate_submission_not_executed_twice(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, _):
            first = client.submit(APP, PARAMS)["job"]
            dup = client.submit(APP, PARAMS, force=True)["job"]
            assert dup["id"] != first["id"]
            assert dup["report_key"] == first["report_key"]
            node, thread = _run_worker(client.base_url, "w1", max_jobs=1)
            thread.join(60)
            assert client.wait(first["id"], timeout=30)["state"] == DONE
            # The duplicate resolved from the store without running.
            assert client.wait(dup["id"], timeout=30)["state"] == DONE
            assert node.jobs_completed == 1

    def test_ring_reserves_jobs_for_their_owner(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, daemon):
            client.fleet_register("w1")
            client.fleet_register("w2")
            job = client.submit(APP, PARAMS)["job"]
            owner = daemon.fleet.ring.node_for(job["report_key"],
                                               alive={"w1", "w2"})
            loser = "w2" if owner == "w1" else "w1"
            assert client.fleet_pull(loser) is None
            pulled = client.fleet_pull(owner)
            assert pulled is not None and pulled["id"] == job["id"]

    def test_lease_expiry_redelivers_to_a_live_worker(self, tmp_path):
        serial = _serial_json(APP, PARAMS)
        with running_daemon(tmp_path / "svc", workers=0,
                            lease_seconds=0.3) as (client, _):
            job = client.submit(APP, PARAMS)["job"]
            # A worker claims the job, then dies: no heartbeat, no push.
            client.fleet_register("ghost")
            claimed = client.fleet_pull("ghost")
            assert claimed is not None and claimed["id"] == job["id"]
            assert _metric_value(client.metrics(),
                                 "repro_service_leases_active") == 1
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if client.job(job["id"])["state"] == SUBMITTED:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("expired lease was never redelivered")
            _, thread = _run_worker(client.base_url, "rescuer", max_jobs=1)
            thread.join(60)
            final = client.wait(job["id"], timeout=30)
            assert final["state"] == DONE
            assert final["worker"] == "rescuer"
            assert final["attempts"] == 2  # ghost's claim + the redelivery
            fetched = client.report(final["report_key"])
            assert json.dumps(fetched, indent=2) == serial

    def test_heartbeat_keeps_a_lease_alive_and_409s_when_lost(
            self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0,
                            lease_seconds=0.4) as (client, daemon):
            client.submit(APP, PARAMS)
            client.fleet_register("w1")
            job = client.fleet_pull("w1")
            for _ in range(4):  # outlive several lease windows
                time.sleep(0.15)
                client.fleet_heartbeat("w1", job["id"])
            assert client.job(job["id"])["state"] == RUNNING
            daemon.queue.expire_leases(now=time.time() + 60)
            with pytest.raises(ServiceError) as err:
                client.fleet_heartbeat("w1", job["id"])
            assert err.value.status == 409

    def test_worker_failure_requeues_then_fails_for_good(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, daemon):
            daemon.fleet.retry_limit = 2
            client.submit(APP, PARAMS)
            client.fleet_register("w1")
            job = client.fleet_pull("w1")
            client.fleet_fail("w1", job["id"], "RuntimeError: kaboom")
            record = client.job(job["id"])
            assert record["state"] == SUBMITTED  # redelivered, not dead
            assert record["error"] == "RuntimeError: kaboom"
            job = client.fleet_pull("w1")
            client.fleet_fail("w1", job["id"], "RuntimeError: kaboom again")
            record = client.job(job["id"])
            assert record["state"] == FAILED
            assert record["attempts"] == 2

    def test_fleet_workers_listing_and_gauges(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, _):
            job = client.submit(APP, PARAMS)["job"]
            node, thread = _run_worker(client.base_url, "metrics-w",
                                       max_jobs=1)
            thread.join(60)
            client.wait(job["id"], timeout=30)
            listing = client.fleet_workers()
            assert "metrics-w" in listing["live"]
            (record,) = [w for w in listing["workers"]
                         if w["id"] == "metrics-w"]
            assert record["jobs_completed"] == 1 and record["live"]
            text = client.metrics()
            assert _metric_value(text, "repro_service_worker_jobs",
                                 worker="metrics-w") == 1
            assert _metric_value(text,
                                 "repro_service_fleet_workers_live") >= 1
            assert _metric_value(text, "repro_service_leases_active") == 0
            assert _metric_value(text, "repro_service_fleet_completions",
                                 worker="metrics-w") == 1

    def test_worker_relays_streaming_snapshots_home(self, tmp_path):
        # A short lease makes the worker heartbeat every lease/3 =
        # 0.1s, so the ~1s workload relays rolling snapshots mid-run;
        # the final snapshot always rides the completion push.
        with running_daemon(tmp_path / "svc", workers=0,
                            lease_seconds=0.3) as (client, _):
            job = client.submit(APP, {"iterations": 2000})["job"]
            _, thread = _run_worker(client.base_url, "streamer", max_jobs=1)
            thread.join(60)
            final_record = client.wait(job["id"], timeout=30)
            collected, after = [], 0
            for _ in range(100):
                resp = client.events(job["id"], after=after, timeout=2)
                collected += resp["events"]
                after = resp["last_seq"]
                if resp["done"]:
                    break
            snaps = [e for e in collected if e["event"] == "stream.snapshot"]
            assert snaps, "worker snapshots must reach the home stream"
            assert all(s["worker"] == "streamer" for s in snaps)
            assert snaps[-1]["final"] is True
            # The relayed final snapshot carries the stored report's
            # ranked problems, byte for byte.
            stored = client.report(final_record["report_key"])
            assert (json.dumps(snaps[-1]["problems"], sort_keys=True)
                    == json.dumps(stored["problems"], sort_keys=True))
            names = [e["event"] for e in collected]
            assert names.index("stream.snapshot") < names.index("job.done")


# ----------------------------------------------------------------------
# Backpressure: 429 + Retry-After, honoured end to end
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_saturated_queue_answers_429_with_retry_after(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0,
                            max_queue=1) as (client, _):
            client.submit(APP, PARAMS)
            blunt = ServiceClient(client.base_url, retries=0)
            with pytest.raises(ServiceError) as err:
                blunt.submit(APP_B, PARAMS_B)
            assert err.value.status == 429
            assert err.value.retry_after is not None
            assert err.value.retry_after >= 1
            assert _metric_value(
                blunt.metrics(),
                "repro_service_backpressure_rejections") == 1

    def test_client_backs_off_and_lands_the_submit(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0,
                            max_queue=1) as (client, _):
            first = client.submit(APP, PARAMS)["job"]
            # A worker drains the queue while the client is backing off.
            _, thread = _run_worker(client.base_url, "drainer", max_jobs=2)
            patient = ServiceClient(client.base_url, retries=6)
            second = patient.submit(APP_B, PARAMS_B)["job"]
            thread.join(90)
            assert patient.wait(first["id"], timeout=60)["state"] == DONE
            assert patient.wait(second["id"], timeout=60)["state"] == DONE


# ----------------------------------------------------------------------
# Coordinator unit behaviour (no HTTP)
# ----------------------------------------------------------------------
class TestCoordinatorUnits:
    def _fixture(self, tmp_path, **kwargs):
        queue = JobQueue(tmp_path / "queue")
        store = ReportStore(tmp_path / "store")
        return queue, store, FleetCoordinator(queue, store, **kwargs)

    def _submit_real(self, queue):
        spec = WorkloadSpec.from_params(APP, PARAMS)
        config = DiogenesConfig()
        identity = report_identity(spec, config)
        job = queue.submit(APP, PARAMS, config_to_json(config),
                           identity.key())
        return job, identity

    def test_identity_mismatch_fails_the_job_loudly(self, tmp_path):
        queue, _, fleet = self._fixture(tmp_path)
        job, identity = self._submit_real(queue)
        fleet.register("w1")
        pulled = fleet.pull("w1")
        assert pulled.id == job.id
        skewed = dict(identity)
        skewed["code_fingerprint"] = "deadbeef" * 5
        with pytest.raises(ValueError, match="skewed code"):
            fleet.complete("w1", job.id, skewed,
                           encode_tree({"schema_version": 1}), None)
        assert queue.get(job.id).state == FAILED
        assert "skewed" in queue.get(job.id).error

    def test_stale_completion_is_acknowledged_not_applied(self, tmp_path):
        queue, store, fleet = self._fixture(tmp_path, lease_seconds=0.01)
        job, identity = self._submit_real(queue)
        fleet.register("w1")
        fleet.pull("w1")
        time.sleep(0.03)
        assert [j.id for j in fleet.expire()] == [job.id]
        # w1 finishes anyway and pushes after losing its lease.
        reply = fleet.complete("w1", job.id, dict(identity),
                               encode_tree({"schema_version": 1}), None)
        assert reply["stale"] is True
        assert queue.get(job.id).state == SUBMITTED
        # The bytes are banked: the next pull resolves without running.
        assert store.contains(identity.key())
        fleet.register("w2")
        assert fleet.pull("w2") is None  # dedup-resolved, nothing to run
        assert queue.get(job.id).state == DONE

    def test_stitch_trace_rebases_and_roots_worker_spans(self, tmp_path):
        queue, _, _ = self._fixture(tmp_path)
        job, _ = self._submit_real(queue)
        from repro.obs.tracer import Tracer

        worker_tracer = Tracer()
        with worker_tracer.span("fleet.worker.job", job=job.id):
            with worker_tracer.span("stage.stage1_baseline"):
                pass
        payload = stitch_trace(job, "w9",
                               worker_tracer.export_batch(pid=4242))
        spans = payload["spans"]
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["service.job"]
        assert payload["worker"] == "w9"
        ids = [s["span_id"] for s in spans]
        assert len(ids) == len(set(ids)) == 3
        adopted = [s for s in spans if s["name"] == "fleet.worker.job"]
        assert adopted[0]["parent_id"] == roots[0]["span_id"]
        assert adopted[0]["pid"] == 4242
        assert roots[0]["wall_end"] >= max(s["wall_end"] for s in spans)

    def test_unknown_job_raises_key_error(self, tmp_path):
        _, _, fleet = self._fixture(tmp_path)
        fleet.register("w1")
        with pytest.raises(KeyError):
            fleet.complete("w1", "job-404404", {}, {}, None)
        with pytest.raises(KeyError):
            fleet.fail("w1", "job-404404", "boom")

    def test_register_validates_worker_id(self, tmp_path):
        _, _, fleet = self._fixture(tmp_path)
        with pytest.raises(ValueError):
            fleet.register("")


# ----------------------------------------------------------------------
# Graceful drain: SIGTERM on serve and worker subprocesses
# ----------------------------------------------------------------------
def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + [p for p in env.get("PYTHONPATH", "").split(
            os.pathsep) if p])
    return env


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _wait_for_line(stream, needle: str, timeout: float = 30.0) -> str:
    found: list[str] = []

    def reader():
        for line in stream:
            if needle in line:
                found.append(line)
                return

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout)
    assert found, f"never saw {needle!r} in subprocess output"
    return found[0]


class TestGracefulDrain:
    def test_serve_finishes_inflight_job_on_sigterm(self, tmp_path):
        port = _free_port()
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.cli", "serve",
             "--port", str(port), "--data-dir", str(tmp_path / "svc"),
             "--workers", "1"],
            env=_cli_env(), cwd=REPO_ROOT, stderr=subprocess.PIPE,
            text=True)
        try:
            _wait_for_line(proc.stderr, "analysis service on")
            client = ServiceClient(f"http://127.0.0.1:{port}", retries=8)
            job = client.submit(APP, PARAMS)["job"]
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(10)
        # Queue state persisted: the job either finished or is cleanly
        # waiting — never stuck "running" in a dead process.
        queue = JobQueue(tmp_path / "svc" / "queue")
        record = queue.get(job["id"])
        assert record.state in (DONE, SUBMITTED)
        if record.state == DONE:
            store = ReportStore(tmp_path / "svc" / "store")
            assert store.contains(record.report_key)

    def test_worker_drains_and_exits_zero_on_sigterm(self, tmp_path):
        with running_daemon(tmp_path / "svc", workers=0) as (client, _):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.core.cli", "worker",
                 "--coordinator", client.base_url, "--id", "drain-w",
                 "--no-cache"],
                env=_cli_env(), cwd=REPO_ROOT, stderr=subprocess.PIPE,
                text=True)
            try:
                _wait_for_line(proc.stderr, "pulling from")
                job = client.submit(APP, PARAMS)["job"]
                final = client.wait(job["id"], timeout=60)
                assert final["state"] == DONE and final["worker"] == "drain-w"
                proc.send_signal(signal.SIGTERM)
                assert proc.wait(timeout=30) == 0
                remains = proc.stderr.read()
                assert "drained" in remains
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(10)
