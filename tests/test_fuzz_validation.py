"""The estimated-vs-actual property suite over fuzzed workloads.

Every planted problem must be detected at its planted site, nothing
may be flagged elsewhere, and the benefit estimator must agree with
the measured saving of the fixed variant — checked over a fixed-seed
tier-1 shard plus a hypothesis-driven seed sweep.  A failing seed is
reported in copy-pasteable ``diogenes fuzz --seed N`` form.
"""

from __future__ import annotations

import pickle

import pytest

from repro.apps.base import registry
from repro.core import cli
from repro.exec.jobs import WorkloadSpec
from repro.fuzz import (
    FuzzedApp,
    Tolerance,
    build_plan,
    run_campaign,
    validate_seed,
)

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402


def _repro_command(seed: int) -> str:
    return f"reproduce with: diogenes fuzz --seed {seed}"


# ----------------------------------------------------------------------
# Plan generation
# ----------------------------------------------------------------------
def test_plan_is_deterministic():
    a, b = build_plan(123), build_plan(123)
    assert a == b
    assert a.to_json() == b.to_json()


def test_plan_varies_with_seed():
    plans = {build_plan(seed).to_json()["segments"][0]["kernel_time"]
             for seed in range(20)}
    assert len(plans) > 1


def test_every_plan_has_a_planted_problem():
    for seed in range(50):
        assert build_plan(seed).planted_lines(), _repro_command(seed)


def test_plan_manifest_records_sites_and_counts():
    plan = build_plan(5)
    for (file, line, kind), count in plan.planted_lines().items():
        assert file == plan.file
        assert line > 0
        assert count >= 1
        assert kind in ("unnecessary_synchronization",
                        "misplaced_synchronization",
                        "unnecessary_transfer")


# ----------------------------------------------------------------------
# Execution-layer integration: specs, registry, pickling
# ----------------------------------------------------------------------
def test_fuzzed_app_is_registry_rebuildable():
    app = registry.create("fuzzed", seed=11)
    spec = WorkloadSpec.for_workload(app)
    assert spec is not None
    rebuilt = registry.create(spec.name, **spec.params_dict())
    assert rebuilt.plan == app.plan


def test_fuzzed_spec_pickles_and_fingerprints_stably():
    spec = WorkloadSpec.from_params("fuzzed", {"seed": 3, "segments": 4})
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.fingerprint() == spec.fingerprint()
    other = WorkloadSpec.from_params("fuzzed", {"seed": 4, "segments": 4})
    assert other.fingerprint() != spec.fingerprint()


def test_fuzzed_app_runs_identically_twice():
    one = FuzzedApp(seed=21).uninstrumented_time()
    two = FuzzedApp(seed=21).uninstrumented_time()
    assert one == two


# ----------------------------------------------------------------------
# The property: recall, precision, and estimator honesty
# ----------------------------------------------------------------------
def test_fixed_seed_shard():
    """Tier-1 shard: a block of consecutive seeds must be fully clean."""
    campaign = run_campaign(12, start_seed=7)
    for result in campaign.results:
        assert result.ok, (
            f"{result.errors}; {_repro_command(result.seed)}")
    assert campaign.recall() == 1.0


# No explicit @settings: max_examples/deadline come from the active
# profile (`ci` in tier-1, `extended` under HYPOTHESIS_PROFILE).
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_property_planted_problems_round_trip(seed):
    result = validate_seed(seed)
    assert result.ok, f"{result.errors}; {_repro_command(seed)}"


def test_fixed_variant_is_clean_except_hoisted_copies():
    """``fixed=True`` removes every planted problem.

    The only allowed residue is the implicit synchronization of a
    hoisted duplicate upload: the fix moves the first copy out of the
    loop but keeps it (the data is still needed), and a pageable
    ``cudaMemcpy``'s implicit sync is honestly still flagged.  This is
    exactly why the estimator subset excludes occurrence 0 at dup
    sites.
    """
    from repro.core.diogenes import Diogenes
    from repro.core.graph import ProblemKind
    from repro.fuzz.generator import _LN_COPY, _LN_HOIST

    app = FuzzedApp(seed=9, fixed=True)
    hoist_lines = {line - _LN_COPY + _LN_HOIST
                   for line in app.plan.duplicate_lines()}
    assert hoist_lines, "seed 9 should plant a duplicate transfer"
    for p in Diogenes(app).run().analysis.problems:
        assert p.kind is ProblemKind.UNNECESSARY_SYNC
        assert p.line in hoist_lines


def test_validate_counts_planted_duplicates_exactly():
    result = validate_seed(2)
    assert result.planted_problems >= 1
    assert result.detected_problems == result.planted_problems


def test_tolerance_allowance_scales_with_ops():
    tol = Tolerance(rel=0.1, abs_per_op=10e-6)
    assert tol.allowance(0.0, 0.0, 3) == pytest.approx(30e-6)
    assert tol.allowance(1e-3, 0.5e-3, 1) == pytest.approx(10e-6 + 1e-4)


def test_campaign_manifest_is_byte_stable():
    text_a = run_campaign(3, start_seed=31).to_json_text()
    text_b = run_campaign(3, start_seed=31).to_json_text()
    assert text_a == text_b
    assert text_a.endswith("\n")


def test_campaign_records_failing_seeds():
    # An absurd tolerance forces benefit failures without touching
    # recall, exercising the failure bookkeeping path.
    tight = Tolerance(rel=0.0, abs_per_op=1e-12)
    campaign = run_campaign(2, start_seed=0, tolerance=tight)
    assert not campaign.ok
    manifest = campaign.to_json()
    assert manifest["failing_seeds"] == [r.seed for r in campaign.failures]
    assert manifest["tool"] == "diogenes fuzz"


# ----------------------------------------------------------------------
# CLI subcommand
# ----------------------------------------------------------------------
def test_cli_fuzz_passes_and_writes_manifest(tmp_path, capsys):
    out = tmp_path / "manifest.json"
    rc = cli.main(["fuzz", "--count", "2", "--seed", "7", "--quiet",
                   "--out", str(out)])
    assert rc == 0
    assert out.exists()
    text = capsys.readouterr().out
    assert "recall 100.0%" in text
    second = tmp_path / "manifest2.json"
    assert cli.main(["fuzz", "--count", "2", "--seed", "7", "--quiet",
                     "--out", str(second)]) == 0
    assert out.read_bytes() == second.read_bytes()


def test_cli_fuzz_failure_prints_repro_command(tmp_path, capsys):
    rc = cli.main(["fuzz", "--count", "1", "--seed", "3", "--quiet",
                   "--tol-rel", "0", "--tol-abs-per-op", "0"])
    assert rc == 1
    text = capsys.readouterr().out
    assert "diogenes fuzz --seed 3" in text
