"""Tests for unified-memory demand migration and the §5.3 limitation.

The paper: unified memory transfers happen automatically in the driver;
their source/destination are unknown until completion, so Diogenes
cannot hash them in time — duplicate managed transfers stay hidden.
The reproduction preserves both the mechanism and the limitation.
"""

import numpy as np
import pytest

from repro.apps.base import Workload
from repro.core.diogenes import Diogenes
from repro.core.graph import ProblemKind
from repro.cupti import CuptiSubscription
from repro.driver.api import INTERNAL_WAIT_SYMBOL
from repro.instr.probes import Probe


class ManagedRetransferApp(Workload):
    """The managed-memory twin of DuplicateTransferApp: the same result
    is produced on the device and demand-faulted back every iteration.
    An explicit-transfer app with this pattern would show duplicate
    transfers; the managed version's migrations are invisible."""

    name = "managed-retransfer"

    def __init__(self, iterations: int = 5, elements: int = 1024):
        self.iterations = iterations
        self.elements = elements

    def run(self, ctx):
        rt = ctx.cudart
        with ctx.frame("main", "uvm.cu", 5):
            managed = rt.cudaMallocManaged(self.elements, label="field")
            self.checksum = 0.0
            for i in range(self.iterations):
                with ctx.frame("step", "uvm.cu", 10):
                    # Same payload every iteration — a duplicate by
                    # content, were it an explicit transfer.
                    rt.cudaLaunchKernel(
                        "produce", 400e-6,
                        writes=[(managed,
                                 np.arange(self.elements, dtype=np.float64))])
                with ctx.frame("step", "uvm.cu", 14):
                    self.checksum += float(
                        managed.managed_host.read().sum())
            rt.cudaFree(managed)


class TestDemandMigration:
    def test_fault_blocks_until_producer_done(self, ctx):
        rt = ctx.cudart
        managed = rt.cudaMallocManaged(512)
        rt.cudaLaunchKernel("produce", 5e-3,
                            writes=[(managed, np.full(512, 1.0))])
        before = ctx.machine.now
        managed.managed_host.read()
        assert ctx.machine.now - before >= 5e-3 * 0.9

    def test_second_access_is_fault_free(self, ctx):
        rt = ctx.cudart
        managed = rt.cudaMallocManaged(512)
        rt.cudaLaunchKernel("produce", 1e-3,
                            writes=[(managed, np.full(512, 1.0))])
        managed.managed_host.read()
        before = ctx.machine.now
        managed.managed_host.read()
        assert ctx.machine.now - before < 50e-6

    def test_fault_goes_through_the_funnel(self, ctx):
        waits = []
        ctx.driver.dispatch.attach(Probe(
            {INTERNAL_WAIT_SYMBOL}, exit=lambda r: waits.append(r.name)))
        rt = ctx.cudart
        managed = rt.cudaMallocManaged(512)
        rt.cudaLaunchKernel("produce", 1e-3,
                            writes=[(managed, np.full(512, 1.0))])
        managed.managed_host.read()
        assert len(waits) == 1

    def test_migration_emits_no_cupti_records(self, ctx):
        sub = CuptiSubscription(machine=ctx.machine)
        ctx.driver.attach_cupti(sub)
        rt = ctx.cudart
        managed = rt.cudaMallocManaged(512)
        rt.cudaLaunchKernel("produce", 1e-3,
                            writes=[(managed, np.full(512, 1.0))])
        memcpy_before = len(sub.memcpy_records)
        sync_before = len(sub.sync_records)
        managed.managed_host.read()
        assert len(sub.memcpy_records) == memcpy_before
        assert len(sub.sync_records) == sync_before

    def test_host_memset_restores_residency(self, ctx):
        rt = ctx.cudart
        managed = rt.cudaMallocManaged(512)
        rt.cudaLaunchKernel("produce", 1e-3,
                            writes=[(managed, np.full(512, 1.0))])
        rt.cudaMemset(managed, 0)
        assert managed.managed_residency == "host"
        assert not np.any(np.asarray(managed.managed_host.read()))

    def test_non_managed_buffers_never_fault(self, ctx):
        waits = []
        ctx.driver.dispatch.attach(Probe(
            {INTERNAL_WAIT_SYMBOL}, exit=lambda r: waits.append(1)))
        buf = ctx.host_array(512)
        buf.read()
        assert waits == []


class TestSection53Limitation:
    """Diogenes on the managed-retransfer app: the whole pipeline runs,
    the fault synchronizations are seen, but the duplicate data
    movement stays invisible to the dedup analysis."""

    @pytest.fixture(scope="class")
    def report(self):
        return Diogenes(ManagedRetransferApp()).run()

    def test_pipeline_completes(self, report):
        assert report.analysis.execution_time > 0

    def test_fault_syncs_are_observed(self, report):
        # Stage 1 saw synchronizations whose entry point is the funnel
        # itself (no public API call wraps a demand fault).
        assert INTERNAL_WAIT_SYMBOL in report.stage1.synchronizing_functions

    def test_migrations_are_not_hashed(self, report):
        # The limitation: no transfer-hash records exist for the five
        # identical migrations, so no duplicates are reported.
        assert report.stage3.transfer_hashes == []
        assert not any(p.kind is ProblemKind.UNNECESSARY_TRANSFER
                       for p in report.analysis.problems)

    def test_explicit_twin_would_be_caught(self):
        # Control: the same pattern via explicit transfers IS caught.
        from repro.apps.synthetic import DuplicateTransferApp

        explicit = Diogenes(DuplicateTransferApp(iterations=5)).run()
        assert any(p.kind is ProblemKind.UNNECESSARY_TRANSFER
                   for p in explicit.analysis.problems)

    def test_fault_syncs_required_not_problematic(self, report):
        # Demand faults protect data used immediately: required, not
        # movable — Diogenes rightly does not flag them.
        fault_problems = [p for p in report.analysis.problems
                          if p.api_name == INTERNAL_WAIT_SYMBOL]
        assert fault_problems == []
