"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import ClockError, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(3.5).now == 3.5

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(1.25) == 1.25
        assert clock.now == 1.25

    def test_advance_accumulates(self):
        clock = VirtualClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now == 1.5

    def test_advance_zero_is_noop(self):
        clock = VirtualClock(2.0)
        clock.advance(0.0)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_future_deadline(self):
        clock = VirtualClock()
        assert clock.advance_to(4.0) == 4.0
        assert clock.now == 4.0

    def test_advance_to_past_deadline_is_noop(self):
        clock = VirtualClock(5.0)
        assert clock.advance_to(1.0) == 5.0
        assert clock.now == 5.0

    def test_advance_to_present_is_noop(self):
        clock = VirtualClock(2.0)
        assert clock.advance_to(2.0) == 2.0
