"""Tests for report-to-report regression diffing (`repro.core.diffing`).

Covers the classification model on handcrafted reports (where every
group's fate is chosen exactly), the schema-vintage refusals the
satellite fix demands, the wire round-trip, the rendering, and the
offline `diogenes diff a.json b.json` / explorer `diff <path>` entry
points on real measured reports.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.apps.synthetic import UnnecessarySyncApp
from repro.core import report as reports
from repro.core.cli import main
from repro.core.diffing import (
    BENEFIT_EPSILON,
    SchemaMismatchError,
    diff_from_json,
    diff_reports,
    diff_to_json,
    require_schema_version,
)
from repro.core.diogenes import Diogenes
from repro.core.explorer import Explorer
from repro.core.jsonio import SCHEMA_VERSION, dumps_report, load_report_json


def _problem(kind="unnecessary_synchronization",
             location="synthetic.cpp:23", api_name="cudaDeviceSynchronize",
             est_benefit=1e-3) -> dict:
    return {"kind": kind, "location": location, "api_name": api_name,
            "est_benefit": est_benefit}


def _report(problems, execution_time=1.0, workload="app",
            schema_version=SCHEMA_VERSION) -> dict:
    return {
        "schema_version": schema_version,
        "workload": workload,
        "execution_time": execution_time,
        "total_est_benefit": sum(p["est_benefit"] for p in problems),
        "problems": problems,
    }


class TestClassification:
    def test_identical_reports_diff_to_all_unchanged(self):
        report = _report([_problem(), _problem(location="synthetic.cpp:40")])
        diff = diff_reports(report, json.loads(json.dumps(report)))
        assert [g.status for g in diff.groups] == ["unchanged", "unchanged"]
        assert diff.execution_delta == 0.0
        assert diff.is_regression is False
        assert diff.recovered_benefit == 0.0

    def test_every_status_is_assigned(self):
        base = _report([
            _problem(location="a.cpp:1", est_benefit=1e-3),   # fixed
            _problem(location="a.cpp:2", est_benefit=1e-3),   # regressed
            _problem(location="a.cpp:3", est_benefit=2e-3),   # improved
            _problem(location="a.cpp:4", est_benefit=1e-3),   # unchanged
        ])
        new = _report([
            _problem(location="a.cpp:2", est_benefit=5e-3),
            _problem(location="a.cpp:3", est_benefit=1e-3),
            _problem(location="a.cpp:4", est_benefit=1e-3),
            _problem(location="a.cpp:5", est_benefit=4e-3),   # new
        ])
        diff = diff_reports(base, new)
        by_location = {g.location: g.status for g in diff.groups}
        assert by_location == {"a.cpp:1": "fixed", "a.cpp:2": "regressed",
                               "a.cpp:3": "improved", "a.cpp:4": "unchanged",
                               "a.cpp:5": "new"}
        assert diff.is_regression is True
        assert diff.recovered_benefit == pytest.approx(1e-3)
        # Rendering order: most consequential first.
        assert [g.status for g in diff.groups] == \
            ["new", "regressed", "improved", "fixed", "unchanged"]

    def test_same_location_different_kind_are_distinct_groups(self):
        base = _report([_problem(kind="kind_one")])
        new = _report([_problem(kind="kind_two")])
        diff = diff_reports(base, new)
        assert {(g.kind, g.status) for g in diff.groups} == \
            {("kind_one", "fixed"), ("kind_two", "new")}

    def test_multiple_problems_fold_into_one_group(self):
        base = _report([_problem(est_benefit=1e-3) for _ in range(4)])
        diff = diff_reports(base, _report([]))
        (group,) = diff.groups
        assert group.count_a == 4 and group.count_b == 0
        assert group.benefit_a == pytest.approx(4e-3)
        assert diff.recovered_benefit == pytest.approx(4e-3)

    def test_sub_epsilon_benefit_drift_is_unchanged(self):
        base = _report([_problem(est_benefit=1e-3)])
        new = _report([_problem(est_benefit=1e-3 + BENEFIT_EPSILON / 10)])
        (group,) = diff_reports(base, new).groups
        assert group.status == "unchanged"

    def test_execution_delta_percent_handles_zero_base(self):
        diff = diff_reports(_report([], execution_time=0.0),
                            _report([], execution_time=1.0))
        assert diff.execution_delta_percent == 0.0


class TestSchemaRefusal:
    def test_missing_stamp_is_refused_with_clear_message(self):
        report = _report([])
        del report["schema_version"]
        with pytest.raises(SchemaMismatchError,
                           match="no schema_version stamp"):
            diff_reports(report, _report([]))
        with pytest.raises(SchemaMismatchError, match="report b"):
            diff_reports(_report([]), dict(report))

    def test_mismatched_stamps_are_refused(self):
        with pytest.raises(SchemaMismatchError,
                           match="cannot diff across schema versions"):
            diff_reports(_report([]), _report([], schema_version=2))

    def test_foreign_version_is_refused_even_when_equal(self):
        with pytest.raises(SchemaMismatchError,
                           match=f"understands schema {SCHEMA_VERSION}"):
            diff_reports(_report([], schema_version=99),
                         _report([], schema_version=99))

    @pytest.mark.parametrize("stamp", [None, "1", 1.0, True])
    def test_non_integer_stamps_are_refused(self, stamp):
        with pytest.raises(SchemaMismatchError):
            require_schema_version(_report([], schema_version=stamp))

    def test_non_dict_input_is_refused(self):
        with pytest.raises(SchemaMismatchError, match="not a report object"):
            require_schema_version(["not", "a", "report"])

    def test_exported_reports_carry_the_stamp(self):
        report = Diogenes(UnnecessarySyncApp(iterations=3)).run()
        assert json.loads(dumps_report(report))["schema_version"] == \
            SCHEMA_VERSION


class TestWireFormat:
    def test_to_json_from_json_round_trip(self):
        base = _report([_problem(est_benefit=2e-3)], execution_time=2.0)
        new = _report([], execution_time=1.5)
        diff = diff_reports(base, new)
        restored = diff_from_json(json.loads(json.dumps(diff_to_json(diff))))
        assert diff_to_json(restored) == diff_to_json(diff)
        assert restored.recovered_benefit == diff.recovered_benefit
        assert restored.is_regression == diff.is_regression

    def test_json_counts_match_groups(self):
        diff = diff_to_json(diff_reports(
            _report([_problem()]), _report([])))
        assert diff["counts"]["fixed"] == 1
        assert sum(diff["counts"].values()) == len(diff["groups"])


class TestRendering:
    def test_render_names_fixed_group_and_verdict(self):
        base = _report([_problem(est_benefit=1e-3)], execution_time=2.0)
        new = _report([], execution_time=1.0)
        text = reports.render_diff(diff_reports(base, new))
        assert "Fixed problem groups (1)" in text
        assert "synthetic.cpp:23" in text
        assert "count 1->0" in text
        assert "-1.000000s (-50.00%)" in text
        assert "No regression" in text

    def test_render_flags_regression(self):
        text = reports.render_diff(diff_reports(
            _report([]), _report([_problem()])))
        assert "New problem groups (1)" in text
        assert "REGRESSION: run b introduces or worsens problems" in text


# ----------------------------------------------------------------------
# End-to-end on real measured reports (base vs fixed variant)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def exported_pair(tmp_path_factory):
    directory = tmp_path_factory.mktemp("reports")
    paths = {}
    for label, fixed in (("base", False), ("fixed", True)):
        report = Diogenes(UnnecessarySyncApp(iterations=4,
                                             fixed=fixed)).run()
        paths[label] = directory / f"{label}.json"
        paths[label].write_text(dumps_report(report))
    return paths


class TestOfflineEndToEnd:
    def test_fix_recovers_close_to_the_estimate(self, exported_pair):
        base = load_report_json(exported_pair["base"])
        fixed = load_report_json(exported_pair["fixed"])
        diff = diff_reports(base, fixed)
        (group,) = diff.fixed_groups
        assert group.kind == "unnecessary_synchronization"
        assert group.count_a == 4
        assert diff.execution_delta < 0  # the fix made run b faster
        # The measured runtime recovery agrees with the stored estimate.
        assert abs(-diff.execution_delta - diff.recovered_benefit) <= \
            0.25 * diff.recovered_benefit
        assert not diff.is_regression

    def test_cli_offline_diff_without_a_service(self, exported_pair,
                                                capsys, tmp_path):
        json_out = tmp_path / "diff.json"
        assert main(["diff", str(exported_pair["base"]),
                     str(exported_pair["fixed"]),
                     "--json", str(json_out)]) == 0
        out = capsys.readouterr().out
        assert "Fixed problem groups (1)" in out
        assert "No regression" in out
        assert json.loads(json_out.read_text())["counts"]["fixed"] == 1

    def test_cli_fail_on_regression_gates_the_exit_code(self, exported_pair,
                                                        capsys):
        # Reversed operands: going from fixed back to base *is* a
        # regression, and --fail-on-regression turns it into exit 1.
        assert main(["diff", str(exported_pair["fixed"]),
                     str(exported_pair["base"]),
                     "--fail-on-regression"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["diff", str(exported_pair["base"]),
                     str(exported_pair["fixed"]),
                     "--fail-on-regression"]) == 0

    def test_cli_refuses_schema_mismatch(self, exported_pair, tmp_path):
        tampered = tmp_path / "old.json"
        report = load_report_json(exported_pair["base"])
        report["schema_version"] = 99
        tampered.write_text(json.dumps(report))
        with pytest.raises(SystemExit,
                           match="cannot diff across schema versions"):
            main(["diff", str(exported_pair["base"]), str(tampered)])

    def test_cli_rejects_unreadable_report_file(self, exported_pair,
                                                tmp_path):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["diff", str(exported_pair["base"]), str(garbage)])


class TestExplorerDiff:
    def _explore(self, report, *commands):
        out = io.StringIO()
        Explorer(report, out, prompt=False).run(list(commands))
        return out.getvalue()

    def test_explorer_diffs_against_exported_baseline(self, exported_pair):
        live = Diogenes(UnnecessarySyncApp(iterations=4, fixed=True)).run()
        out = self._explore(live, f"diff {exported_pair['base']}", "exit")
        assert "Fixed problem groups (1)" in out
        assert "No regression" in out

    def test_explorer_diff_reports_errors_inline(self, exported_pair,
                                                 tmp_path):
        live = Diogenes(UnnecessarySyncApp(iterations=3)).run()
        assert "usage: diff" in self._explore(live, "diff", "exit")
        assert "No such file" in self._explore(
            live, f"diff {tmp_path}/missing.json", "exit")
        tampered = tmp_path / "old.json"
        report = load_report_json(exported_pair["base"])
        report["schema_version"] = 99
        tampered.write_text(json.dumps(report))
        out = self._explore(live, f"diff {tampered}", "exit")
        # Written inline, session keeps going.
        assert "cannot diff across schema versions" in out
        assert "bye" in out
