"""Unit tests for the trackable host memory substrate."""

import numpy as np
import pytest

from repro.hostmem.accesshooks import AccessEvent, AccessHookRegistry
from repro.hostmem.allocator import PAGE_SIZE, HostAddressSpace
from repro.hostmem.buffer import HostBuffer
from repro.hostmem.protection import ProtectionError


@pytest.fixture
def space():
    return HostAddressSpace()


class TestAllocator:
    def test_addresses_are_page_aligned(self, space):
        for nbytes in (1, 100, PAGE_SIZE, PAGE_SIZE + 1):
            assert space.allocate(nbytes) % PAGE_SIZE == 0

    def test_allocations_do_not_overlap(self, space):
        a = space.allocate(10_000)
        b = space.allocate(10_000)
        assert b >= a + 10_000

    def test_zero_allocation_rejected(self, space):
        with pytest.raises(ValueError):
            space.allocate(0)

    def test_find_locates_owner(self, space):
        buf = HostBuffer(space, 100)
        assert space.find(buf.address) is buf
        assert space.find(buf.address + buf.nbytes - 1) is buf

    def test_find_misses_outside_region(self, space):
        buf = HostBuffer(space, 100)
        assert space.find(buf.address + buf.nbytes) is None
        assert space.find(buf.address - 1) is None

    def test_unregister_removes_buffer(self, space):
        buf = HostBuffer(space, 100)
        buf.free()
        assert space.find(buf.address) is None
        assert buf not in space.live_buffers

    def test_unregister_unknown_raises(self, space):
        buf = HostBuffer(space, 10)
        space.unregister(buf)
        with pytest.raises(KeyError):
            space.unregister(buf)


class TestHostBuffer:
    def test_zero_size_rejected(self, space):
        with pytest.raises(ValueError):
            HostBuffer(space, 0)

    def test_write_then_read_roundtrip(self, space):
        buf = HostBuffer(space, 16)
        data = np.arange(16, dtype=np.float64)
        buf.write(data)
        assert np.array_equal(buf.read(), data)

    def test_read_view_is_readonly(self, space):
        buf = HostBuffer(space, 8)
        view = buf.read()
        with pytest.raises(ValueError):
            view[0] = 1.0

    def test_partial_write_at_offset(self, space):
        buf = HostBuffer(space, 8)
        buf.write(np.array([7.0]), offset=8)
        assert buf.read()[1] == 7.0
        assert buf.read()[0] == 0.0

    def test_out_of_bounds_access_rejected(self, space):
        buf = HostBuffer(space, 4)
        with pytest.raises(IndexError):
            buf.read(0, buf.nbytes + 1)
        with pytest.raises(IndexError):
            buf.write(np.zeros(5), offset=0)
        with pytest.raises(IndexError):
            buf.read(-1, 4)

    def test_unaligned_read_returns_bytes(self, space):
        buf = HostBuffer(space, 4)
        view = buf.read(1, 3)
        assert view.dtype == np.uint8
        assert view.shape == (3,)

    def test_fill_sets_values(self, space):
        buf = HostBuffer(space, 4)
        buf.fill(2.5)
        assert np.all(np.asarray(buf.read()) == 2.5)

    def test_double_free_raises(self, space):
        buf = HostBuffer(space, 4)
        buf.free()
        with pytest.raises(RuntimeError):
            buf.free()

    def test_use_after_free_raises(self, space):
        buf = HostBuffer(space, 4)
        buf.free()
        with pytest.raises(RuntimeError):
            buf.read()
        with pytest.raises(RuntimeError):
            buf.write(np.zeros(1))

    def test_raw_write_bypasses_hooks(self, space):
        events = []
        space.hooks.add(events.append)
        buf = HostBuffer(space, 8)
        buf.raw_write_bytes(np.zeros(64, dtype=np.uint8))
        assert events == []

    def test_flags(self, space):
        pinned = HostBuffer(space, 4, pinned=True)
        managed = HostBuffer(space, 4, managed=True)
        plain = HostBuffer(space, 4)
        assert pinned.pinned and not pinned.managed
        assert managed.managed and not managed.pinned
        assert not plain.pinned and not plain.managed


class TestAccessHooks:
    def test_load_and_store_fire_hooks(self, space):
        events: list[AccessEvent] = []
        space.hooks.add(events.append)
        buf = HostBuffer(space, 8)
        buf.write(np.array([1.0, 2.0]))
        buf.read(0, 8)
        kinds = [e.kind for e in events]
        assert kinds == ["store", "load"]
        assert events[0].address == buf.address
        assert events[1].size == 8

    def test_hook_addresses_reflect_offset(self, space):
        events = []
        space.hooks.add(events.append)
        buf = HostBuffer(space, 32)
        buf.read(16, 8)
        assert events[0].address == buf.address + 16

    def test_removed_hook_stops_firing(self, space):
        events = []
        hook = space.hooks.add(events.append)
        buf = HostBuffer(space, 8)
        buf.read()
        space.hooks.remove(hook)
        buf.read()
        assert len(events) == 1

    def test_remove_unknown_hook_raises(self):
        registry = AccessHookRegistry()
        with pytest.raises(KeyError):
            registry.remove(lambda e: None)

    def test_events_timestamped_by_clock(self, space):
        class FakeClock:
            now = 12.5

        space.set_clock(FakeClock())
        events = []
        space.hooks.add(events.append)
        HostBuffer(space, 8).read()
        assert events[0].time == 12.5

    def test_no_clock_means_time_zero(self, space):
        events = []
        space.hooks.add(events.append)
        HostBuffer(space, 8).read()
        assert events[0].time == 0.0


class TestProtection:
    def test_protected_write_faults(self, space):
        buf = HostBuffer(space, 8)
        buf.protection.protect()
        with pytest.raises(ProtectionError):
            buf.write(np.array([1.0]))

    def test_protected_fill_faults(self, space):
        buf = HostBuffer(space, 8)
        buf.protection.protect()
        with pytest.raises(ProtectionError):
            buf.fill(0)

    def test_faults_are_recorded(self, space):
        buf = HostBuffer(space, 8)
        buf.protection.protect()
        with pytest.raises(ProtectionError):
            buf.write(np.array([1.0]))
        assert buf.protection.faults == [(buf.address, 8)]

    def test_reads_still_allowed(self, space):
        buf = HostBuffer(space, 8)
        buf.protection.protect()
        buf.read()  # must not raise

    def test_unprotect_restores_writes(self, space):
        buf = HostBuffer(space, 8)
        buf.protection.protect()
        buf.protection.unprotect()
        buf.write(np.array([1.0]))
        assert buf.read()[0] == 1.0

    def test_data_unchanged_after_fault(self, space):
        buf = HostBuffer(space, 8)
        buf.write(np.array([3.0]))
        buf.protection.protect()
        with pytest.raises(ProtectionError):
            buf.write(np.array([9.0]))
        assert buf.read()[0] == 3.0


class TestContentDigest:
    def test_matches_payload_hash(self, space):
        from repro.core.stage3_memtrace import hash_payload

        buf = HostBuffer(space, 32)
        buf.write(np.arange(32, dtype=np.float64))
        assert buf.content_digest() == hash_payload(buf.raw_bytes())
        assert buf.content_digest(8, 64) == hash_payload(buf.raw_bytes(8, 64))

    def test_every_store_path_bumps_generation(self, space):
        buf = HostBuffer(space, 8)
        g0 = buf.write_generation
        buf.write(np.array([1.0]))
        buf.fill(0, offset=8, size=8)
        buf.raw_write_bytes(np.zeros(4, dtype=np.uint8), offset=16)
        assert buf.write_generation == g0 + 3

    def test_reads_do_not_bump_generation(self, space):
        buf = HostBuffer(space, 8)
        g0 = buf.write_generation
        buf.read()
        buf.raw_bytes()
        buf.content_digest()
        assert buf.write_generation == g0

    def test_repeated_digest_is_cached(self, space):
        buf = HostBuffer(space, 8)
        buf.fill(3.0)
        first = buf.content_digest()
        key = (0, buf.nbytes)
        assert buf._digest_cache[key] == (buf.write_generation, first)
        # Unchanged buffer: repeat serves the cached entry.
        assert buf.content_digest() == first
        assert buf._digest_cache[key] == (buf.write_generation, first)

    def test_store_invalidates_cached_digest(self, space):
        buf = HostBuffer(space, 8)
        buf.fill(1.0)
        stale = buf.content_digest()
        buf.fill(2.0)
        fresh = buf.content_digest()
        assert fresh != stale
        # And the recomputed digest is correct, not the cached one.
        from repro.core.stage3_memtrace import hash_payload

        assert fresh == hash_payload(buf.raw_bytes())

    def test_windows_cached_independently(self, space):
        buf = HostBuffer(space, 16)
        buf.write(np.arange(16, dtype=np.float64))
        whole = buf.content_digest()
        low = buf.content_digest(0, 64)
        high = buf.content_digest(64, 64)
        assert len({whole, low, high}) == 3
        assert set(buf._digest_cache) == {(0, 128), (0, 64), (64, 64)}

    def test_same_bytes_same_digest_across_buffers(self, space):
        a = HostBuffer(space, 8)
        b = HostBuffer(space, 8)
        a.fill(5.0)
        b.fill(5.0)
        assert a.content_digest() == b.content_digest()

    def test_digest_after_free_raises(self, space):
        buf = HostBuffer(space, 8)
        buf.free()
        with pytest.raises(RuntimeError):
            buf.content_digest()
