"""Golden-report regression tests for the four example apps.

Each fixture under ``tests/golden/`` is the full report JSON of one
app at golden scale (see :mod:`tests.goldens`).  The pipeline is
deterministic end to end — virtual clock, content hashing, stable
fake addresses — so the snapshots are byte-exact; any diff means
observable tool behaviour changed.

On an *intentional* change, regenerate and commit the fixtures::

    PYTHONPATH=src python tests/regen_golden.py
"""

from __future__ import annotations

import difflib
import itertools

import pytest

from tests.goldens import GOLDEN_APPS, GOLDEN_DIR, generate_report_json

_MAX_DIFF_LINES = 40


@pytest.mark.parametrize("stem", sorted(GOLDEN_APPS))
def test_report_matches_golden_fixture(stem):
    path = GOLDEN_DIR / f"{stem}.json"
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with\n"
        "    PYTHONPATH=src python tests/regen_golden.py"
    )
    expected = path.read_text()
    actual = generate_report_json(stem)
    if actual == expected:
        return
    diff = itertools.islice(
        difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{stem}.json (committed)",
            tofile=f"golden/{stem}.json (this run)",
        ),
        _MAX_DIFF_LINES,
    )
    pytest.fail(
        f"report for {GOLDEN_APPS[stem][0]!r} drifted from its golden "
        f"fixture (first {_MAX_DIFF_LINES} diff lines below).\n"
        "If the change is intentional, regenerate with\n"
        "    PYTHONPATH=src python tests/regen_golden.py\n"
        "and commit the diff.\n\n" + "".join(diff)
    )
