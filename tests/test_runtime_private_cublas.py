"""Tests for the runtime layer, the private driver API, and fake cuBLAS."""

import numpy as np
import pytest

from repro.cublas import CublasHandle
from repro.cupti import CuptiSubscription
from repro.driver import private as priv
from repro.driver.api import INTERNAL_WAIT_SYMBOL
from repro.driver.handles import DeviceBuffer
from repro.instr.probes import Probe


def attach_cupti(ctx):
    sub = CuptiSubscription(machine=ctx.machine)
    ctx.driver.attach_cupti(sub)
    return sub


class TestRuntimeApi:
    def test_cudamemcpy_infers_h2d(self, ctx):
        dev = ctx.cudart.cudaMalloc(4096)
        host = ctx.host_array(512)
        host.write(np.arange(512, dtype=np.float64))
        ctx.cudart.cudaMemcpy(dev, host)
        assert np.array_equal(dev.read_shadow(0, 4096).view(np.float64),
                              np.arange(512))

    def test_cudamemcpy_infers_d2h(self, ctx):
        dev = ctx.cudart.cudaMalloc(4096)
        dev.write_shadow(np.full(512, 3.0))
        host = ctx.host_array(512)
        ctx.cudart.cudaMemcpy(host, dev)
        assert np.all(np.asarray(host.read()) == 3.0)

    def test_cudamemcpy_infers_d2d(self, ctx):
        a = ctx.cudart.cudaMalloc(64)
        b = ctx.cudart.cudaMalloc(64)
        a.write_shadow(np.arange(8, dtype=np.float64))
        ctx.cudart.cudaMemcpy(b, a)
        assert np.array_equal(a.read_shadow(), b.read_shadow())

    def test_cudamemcpy_rejects_host_to_host(self, ctx):
        with pytest.raises(TypeError):
            ctx.cudart.cudaMemcpy(ctx.host_array(8), ctx.host_array(8))

    def test_thread_synchronize_is_device_synchronize(self, ctx):
        ctx.cudart.cudaLaunchKernel("k", 2e-3)
        ctx.cudart.cudaThreadSynchronize()
        assert ctx.machine.now >= 2e-3

    def test_runtime_records_reported_to_cupti(self, ctx):
        sub = attach_cupti(ctx)
        ctx.cudart.cudaMalloc(64)
        names = [r.name for r in sub.api_records if r.layer == "runtime"]
        assert names == ["cudaMalloc"]

    def test_runtime_call_contains_driver_record(self, ctx):
        sub = attach_cupti(ctx)
        ctx.cudart.cudaMalloc(64)
        driver_names = [r.name for r in sub.api_records if r.layer == "driver"]
        assert driver_names == ["cuMemAlloc"]

    def test_stream_create_destroy(self, ctx):
        sid = ctx.cudart.cudaStreamCreate()
        assert sid != 0
        ctx.cudart.cudaStreamDestroy(sid)

    def test_func_get_attributes_returns_metadata(self, ctx):
        attrs = ctx.cudart.cudaFuncGetAttributes("k")
        assert attrs["name"] == "k"
        assert attrs["maxThreadsPerBlock"] > 0

    def test_freehost_rejects_pageable(self, ctx):
        from repro.driver.errors import InvalidValueError

        with pytest.raises(InvalidValueError):
            ctx.cudart.cudaFreeHost(ctx.host_array(8))

    def test_managed_free_releases_host_view(self, ctx):
        managed = ctx.cudart.cudaMallocManaged(64)
        host = managed.managed_host
        ctx.cudart.cudaFree(managed)
        assert host.freed


class TestPrivateApi:
    def test_private_ops_invisible_to_cupti(self, ctx):
        sub = attach_cupti(ctx)
        dev = ctx.driver.devmem.allocate(4096)
        host = ctx.host_array(512)
        priv.private_launch(ctx.driver, "secret", 1e-4)
        priv.private_memcpy_dtoh(ctx.driver, host, dev)
        priv.private_fence(ctx.driver)
        assert sub.api_records == []
        assert sub.kernel_records == []
        assert sub.memcpy_records == []
        assert sub.sync_records == []

    def test_private_sync_goes_through_funnel(self, ctx):
        waits = []
        ctx.driver.dispatch.attach(Probe(
            {INTERNAL_WAIT_SYMBOL}, exit=lambda r: waits.append(r.name)))
        priv.private_launch(ctx.driver, "secret", 1e-3)
        priv.private_fence(ctx.driver)
        assert len(waits) == 1

    def test_private_memcpy_moves_real_data(self, ctx):
        dev = ctx.driver.devmem.allocate(64)
        dev.write_shadow(np.arange(8, dtype=np.float64))
        host = ctx.host_array(8)
        priv.private_memcpy_dtoh(ctx.driver, host, dev)
        assert np.array_equal(np.asarray(host.read()), np.arange(8))

    def test_private_htod(self, ctx):
        dev = ctx.driver.devmem.allocate(64)
        host = ctx.host_array(8)
        host.write(np.arange(8, dtype=np.float64))
        priv.private_memcpy_htod(ctx.driver, dev, host)
        assert np.array_equal(dev.read_shadow().view(np.float64), np.arange(8))

    def test_install_is_idempotent(self, ctx):
        priv.install(ctx.driver)
        priv.install(ctx.driver)
        assert ctx.driver.dispatch.symbols[priv.PRIVATE_MEMCPY_SYMBOL] == \
            "driver-private"


class TestCublas:
    def test_gemm_computes_correct_product(self, ctx):
        rng = np.random.default_rng(0)
        m, k, n = 8, 5, 7
        am = rng.standard_normal((m, k)).astype(np.float32)
        bm = rng.standard_normal((k, n)).astype(np.float32)
        dev_a = ctx.driver.devmem.allocate(am.nbytes)
        dev_b = ctx.driver.devmem.allocate(bm.nbytes)
        dev_c = ctx.driver.devmem.allocate(m * n * 4)
        dev_a.write_shadow(am)
        dev_b.write_shadow(bm)
        blas = CublasHandle(ctx.driver)
        blas.gemm(dev_a, dev_b, dev_c, m, n, k)
        result = dev_c.read_shadow().view(np.float32).reshape(m, n)
        assert np.allclose(result, am @ bm, atol=1e-4)
        blas.destroy()

    def test_potrf_fences_through_funnel(self, ctx):
        hits = []
        ctx.driver.dispatch.attach(Probe(
            {INTERNAL_WAIT_SYMBOL}, exit=lambda r: hits.append(1)))
        blas = CublasHandle(ctx.driver)
        mats = ctx.driver.devmem.allocate(1024)
        blas.potrf_batched(mats, 32, batch=4)
        assert len(hits) == 1
        blas.destroy()

    def test_workspace_spill_is_private_d2h(self, ctx):
        sub = attach_cupti(ctx)
        blas = CublasHandle(ctx.driver)
        scratch = ctx.host_array(1024)
        blas.workspace_spill(scratch, nbytes=8192)
        assert sub.memcpy_records == []  # private path, unreported
        blas.destroy()

    def test_handle_owns_workspace(self, ctx):
        before = ctx.driver.devmem.live_count
        blas = CublasHandle(ctx.driver)
        assert ctx.driver.devmem.live_count == before + 1
        blas.destroy()
        assert ctx.driver.devmem.live_count == before
