"""Shared definition of the golden-report fixtures.

One source of truth for *which* apps at *which* parameters produce the
snapshots under ``tests/golden/`` — imported by both the regression
test (``tests/test_golden_reports.py``) and the regeneration script
(``tests/regen_golden.py``), so the two can never drift apart.

Regenerate after an intentional behaviour change with::

    PYTHONPATH=src python tests/regen_golden.py

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import pathlib

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: fixture file stem -> (registry workload name, constructor params).
#: Parameters are golden scale: big enough that every problem class
#: (unnecessary/misplaced syncs, duplicate transfers, sequences) shows
#: up, small enough to run in well under a second per app.
GOLDEN_APPS: dict[str, tuple[str, dict]] = {
    "synthetic": ("synthetic-unnecessary-sync", {"iterations": 4}),
    "rodinia_gaussian": ("rodinia-gaussian", {"n": 24}),
    "cumf_als": ("cumf-als", {"iterations": 3, "users": 120, "items": 80}),
    "cuibm": ("cuibm", {"steps": 2, "cg_iters": 4}),
}


def generate_report_json(stem: str) -> str:
    """Run the pipeline for one fixture and return its report JSON."""
    from repro.apps.base import registry
    from repro.core.cli import _load_workloads
    from repro.core.diogenes import Diogenes
    from repro.core.jsonio import dumps_report

    _load_workloads()
    name, params = GOLDEN_APPS[stem]
    return dumps_report(Diogenes(registry.create(name, **params)).run()) + "\n"
