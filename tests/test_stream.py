"""Streaming analysis: the sink seam, incremental snapshots, batch parity.

The load-bearing property here is the acceptance criterion from
docs/streaming.md: the *final* streaming snapshot's ranked problems are
byte-identical to what batch ``analyze()`` reports — checked on every
golden app and over hypothesis-fuzzed workloads — and subscribing a
sink never perturbs the report bytes themselves.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro.obs as obs
from repro.apps.base import registry
from repro.core.cli import _load_workloads
from repro.core.colbuild import Stage2Builder
from repro.core.diogenes import Diogenes
from repro.core.jsonio import dumps_report, problem_to_json
from repro.instr.stacks import intern_frame, intern_stack
from repro.stream import EventSink, StreamAnalyzer, active_sink, subscribed
from tests.goldens import GOLDEN_APPS

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402


# ----------------------------------------------------------------------
# The sink seam
# ----------------------------------------------------------------------
class _CountingSink(EventSink):
    def __init__(self):
        self.appends = 0
        self.stages: list[str] = []
        self.finished: list[str] = []

    def on_append(self, builder):
        self.appends += 1

    def stage_started(self, stage, builder=None):
        self.stages.append(stage)

    def stage_finished(self, stage, data):
        self.finished.append(stage)


def test_no_sink_active_by_default():
    assert active_sink() is None


def test_subscribed_scopes_and_restores():
    outer, inner = _CountingSink(), _CountingSink()
    with subscribed(outer):
        assert active_sink() is outer
        with subscribed(inner):
            assert active_sink() is inner
        assert active_sink() is outer
    assert active_sink() is None


def test_subscription_is_thread_scoped():
    seen = {}
    with subscribed(_CountingSink()):
        t = threading.Thread(
            target=lambda: seen.setdefault("sink", active_sink()))
        t.start()
        t.join()
    assert seen["sink"] is None, (
        "a sink subscribed on one thread must not leak into another")


def _stack(tag: int, depth: int = 2):
    return intern_stack(tuple(
        intern_frame(f"fn_{tag}_{d}", "app.cpp", 100 * tag + d)
        for d in range(depth)))


def test_builder_notifies_subscribed_sink_per_append():
    sink = _CountingSink()
    builder = Stage2Builder()
    builder.sink = sink
    stack = _stack(1)
    for i in range(5):
        builder.append(stack, i, "cudaLaunchKernel",
                       float(i), float(i) + 0.5)
    assert sink.appends == 5


# ----------------------------------------------------------------------
# table_prefix: a live, appendable view of the columns so far
# ----------------------------------------------------------------------
def _filled_builder(n: int = 6) -> Stage2Builder:
    builder = Stage2Builder()
    stack = _stack(2)
    for i in range(n):
        meta = None
        if i % 2:
            meta = {"sync_wait_total": 0.25, "sync_wait_count": 1.0}
        builder.append(stack, i, f"api{i % 3}", float(i),
                       float(i) + 0.5, meta)
    return builder


def test_table_prefix_matches_frozen_prefix():
    builder = _filled_builder(6)
    prefix = builder.table_prefix(4)
    full = _filled_builder(6).table()
    assert len(prefix) == 4
    np.testing.assert_array_equal(prefix.t_entry, full.t_entry[:4])
    np.testing.assert_array_equal(prefix.t_exit, full.t_exit[:4])
    np.testing.assert_array_equal(prefix.is_sync, full.is_sync[:4])
    np.testing.assert_array_equal(prefix.sync_wait, full.sync_wait[:4])
    np.testing.assert_array_equal(prefix.api_codes, full.api_codes[:4])


def test_table_prefix_keeps_builder_appendable():
    builder = _filled_builder(3)
    builder.table_prefix(3)
    # A frozen table() would raise BufferError on the next append; the
    # prefix copy must leave the live columns untouched.
    builder.append(_stack(3, depth=1), 9, "cudaFree", 9.0, 9.5)
    assert len(builder) == 4
    assert len(builder.table()) == 4


def test_table_prefix_clamps_to_length():
    builder = _filled_builder(2)
    assert len(builder.table_prefix(100)) == 2


# ----------------------------------------------------------------------
# Incremental snapshots vs batch analysis
# ----------------------------------------------------------------------
def _run_streaming(name: str, params: dict, **analyzer_kwargs):
    _load_workloads()
    # overhead_fraction=0 disables the self-limiting cadence: these
    # runs finish in milliseconds, and the tests want every window's
    # snapshot, not the production cost governor.
    analyzer = StreamAnalyzer(window_events=4, overhead_fraction=0.0,
                              **analyzer_kwargs)
    with subscribed(analyzer):
        report = Diogenes(registry.create(name, **params)).run()
    return report, analyzer


def _problems_json(problems) -> str:
    return json.dumps([problem_to_json(p) for p in problems],
                      sort_keys=True)


@pytest.mark.parametrize("stem", sorted(GOLDEN_APPS))
def test_final_snapshot_is_byte_identical_to_batch(stem):
    name, params = GOLDEN_APPS[stem]
    report, analyzer = _run_streaming(name, params)
    assert analyzer.final is not None
    assert analyzer.final["final"] is True
    streamed = json.dumps(analyzer.final["problems"], sort_keys=True)
    assert streamed == _problems_json(report.analysis.problems)
    # And against a fully independent unsubscribed batch run:
    _load_workloads()
    batch = Diogenes(registry.create(name, **params)).run()
    assert streamed == _problems_json(batch.analysis.problems)


def test_subscription_does_not_perturb_report_bytes():
    name, params = GOLDEN_APPS["synthetic"]
    streamed_report, _ = _run_streaming(name, params)
    _load_workloads()
    batch_report = Diogenes(registry.create(name, **params)).run()
    assert dumps_report(streamed_report) == dumps_report(batch_report)


def test_snapshot_event_totals_are_monotone():
    name, params = GOLDEN_APPS["synthetic"]
    _, analyzer = _run_streaming(name, params)
    totals = [s["events_seen"]["total"] for s in analyzer.snapshots]
    assert len(totals) >= 3
    assert totals == sorted(totals), totals
    versions = [s["version"] for s in analyzer.snapshots]
    assert versions == list(range(1, len(versions) + 1))


def test_midrun_snapshots_carry_ranked_problems():
    name, params = GOLDEN_APPS["synthetic"]
    _, analyzer = _run_streaming(name, params)
    midrun = [s for s in analyzer.snapshots if not s["final"]]
    assert any(s["problem_count"] >= 1 for s in midrun), (
        "ranked problems must surface before the run completes")


def test_snapshot_payloads_are_json_safe():
    name, params = GOLDEN_APPS["synthetic"]
    _, analyzer = _run_streaming(name, params)
    for snap in analyzer.snapshots:
        round_tripped = json.loads(json.dumps(snap))
        assert round_tripped["version"] == snap["version"]
        assert set(snap["events_seen"]) == {
            "stage1", "stage2", "stage3", "stage4", "total"}


def test_publish_callback_sees_every_snapshot():
    name, params = GOLDEN_APPS["synthetic"]
    published = []
    _, analyzer = _run_streaming(name, params, publish=published.append)
    assert published == analyzer.snapshots
    assert published[-1]["final"] is True


def test_streaming_cost_lands_in_ledger_stream_bucket():
    _load_workloads()
    name, params = GOLDEN_APPS["synthetic"]
    analyzer = StreamAnalyzer(window_events=4)
    with obs.enabled() as o, subscribed(analyzer):
        Diogenes(registry.create(name, **params)).run()
    stream_cells = [cell for (stage, bucket), cell in o.ledger.cells.items()
                    if bucket == "stream"]
    assert stream_cells, "snapshot recomputes must charge the stream bucket"
    assert sum(c.events for c in stream_cells) == len(analyzer.snapshots)


# ----------------------------------------------------------------------
# Property: fuzzed workloads agree with batch, snapshots stay monotone
# ----------------------------------------------------------------------
# No explicit @settings: max_examples/deadline come from the active
# profile (`ci` in tier-1, `extended` under HYPOTHESIS_PROFILE).
@given(seed=st.integers(min_value=0, max_value=50_000))
def test_property_streaming_matches_batch_on_fuzzed_workloads(seed):
    from repro.fuzz import FuzzedApp

    analyzer = StreamAnalyzer(window_events=4, overhead_fraction=0.0)
    with subscribed(analyzer):
        report = Diogenes(FuzzedApp(seed=seed)).run()
    assert analyzer.final is not None, \
        f"reproduce with: diogenes fuzz --seed {seed}"
    assert (json.dumps(analyzer.final["problems"], sort_keys=True)
            == _problems_json(report.analysis.problems)), \
        f"reproduce with: diogenes fuzz --seed {seed}"
    totals = [s["events_seen"]["total"] for s in analyzer.snapshots]
    assert totals == sorted(totals), \
        f"non-monotone {totals}; reproduce with: diogenes fuzz --seed {seed}"
