"""Tests for the CUPTI-like activity framework."""

import pytest

from repro.cupti.activity import CuptiOverflowError, CuptiSubscription
from repro.cupti.records import ApiRecord, SyncActivity
from repro.sim.machine import Machine
from repro.sim.ops import DeviceOp, OpKind


def sample_op(kind=OpKind.KERNEL, nbytes=0):
    op = DeviceOp(kind=kind, duration=1e-3, stream_id=0, name="k",
                  nbytes=nbytes)
    op.start_time, op.end_time = 1.0, 1.001
    return op


class TestRecords:
    def test_api_record_duration(self):
        assert ApiRecord("cudaFree", "runtime", 1.0, 3.5).duration == 2.5

    def test_sync_record_duration(self):
        assert SyncActivity("context", "cuCtxSynchronize", 0.0, 2.0).duration == 2.0


class TestSubscription:
    def test_records_are_bucketed(self):
        sub = CuptiSubscription()
        sub.record_api("cudaMalloc", "runtime", 0.0, 1.0)
        sub.record_kernel(sample_op())
        sub.record_memcpy(sample_op(OpKind.COPY_H2D, 64), "h2d")
        sub.record_memset(sample_op(OpKind.MEMSET, 64))
        sub.record_sync("context", 0.0, 1.0, "cuCtxSynchronize")
        assert sub.total_records == 5
        assert len(sub.api_records) == 1
        assert sub.memcpy_records[0].direction == "h2d"

    def test_callbacks_receive_records(self):
        sub = CuptiSubscription()
        seen = []
        sub.subscribe(seen.append)
        sub.record_api("x", "runtime", 0.0, 1.0)
        assert len(seen) == 1
        assert isinstance(seen[0], ApiRecord)

    def test_overflow_raises(self):
        sub = CuptiSubscription(max_records=2)
        sub.record_api("a", "runtime", 0, 1)
        sub.record_api("b", "runtime", 1, 2)
        with pytest.raises(CuptiOverflowError):
            sub.record_api("c", "runtime", 2, 3)

    def test_unbounded_by_default(self):
        sub = CuptiSubscription()
        for i in range(1000):
            sub.record_api("a", "runtime", i, i + 1)
        assert sub.total_records == 1000

    def test_emission_overhead_charged(self):
        machine = Machine()
        sub = CuptiSubscription(machine=machine, emission_overhead=1e-6)
        sub.record_api("a", "runtime", 0, 1)
        sub.record_api("b", "runtime", 1, 2)
        assert machine.now == pytest.approx(2e-6)

    def test_zero_overhead_without_machine(self):
        sub = CuptiSubscription(machine=None)
        sub.record_api("a", "runtime", 0, 1)  # must not raise
