"""Documentation CI guard: every fenced ``python`` block must run.

Extracts every ```` ```python ```` fence from ``README.md`` and
``docs/*.md`` and executes it in a fresh namespace.  Documentation
examples therefore cannot silently rot: renaming a module or function
that a doc snippet uses fails this test.

Rules for doc authors:

* blocks tagged ``python`` must be self-contained and runnable
  (imports included, no undefined names, no interactive input);
* illustrative fragments that are *not* meant to run (pseudo-code,
  shell transcripts, API sketches) must use another info string
  (``text``, ``pycon``, ``bash``, ...);
* blocks must not write outside ``tempfile`` locations.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation surfaces under guard.
DOC_SOURCES = [REPO_ROOT / "README.md",
               *sorted((REPO_ROOT / "docs").glob("*.md"))]

_FENCE = re.compile(r"^```python[ \t]*\n(.*?)^```[ \t]*$",
                    re.MULTILINE | re.DOTALL)


def _blocks():
    for path in DOC_SOURCES:
        text = path.read_text()
        for n, match in enumerate(_FENCE.finditer(text), start=1):
            line = text.count("\n", 0, match.start()) + 2
            yield pytest.param(
                path, line, match.group(1),
                id=f"{path.relative_to(REPO_ROOT)}:{line}",
            )


PARAMS = list(_blocks())


def test_documentation_has_python_examples():
    """The guard itself must be guarding something."""
    assert len(PARAMS) >= 5


@pytest.mark.parametrize("path, line, code", PARAMS)
def test_doc_example_executes(path, line, code, capsys):
    source = "\n" * (line - 1) + code  # real line numbers in tracebacks
    namespace = {"__name__": "__doc_example__"}
    exec(compile(source, str(path), "exec"), namespace)
