"""Property-based tests for the eager GPU scheduler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.device import GpuDevice
from repro.sim.ops import DeviceOp, OpKind

_op_specs = st.tuples(
    st.sampled_from(list(OpKind)),
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),   # duration
    st.integers(min_value=0, max_value=3),                      # stream slot
    st.floats(min_value=0.0, max_value=0.2, allow_nan=False),   # host gap
)


def _run_schedule(specs):
    gpu = GpuDevice()
    streams = [0] + [gpu.create_stream() for _ in range(3)]
    now = 0.0
    ops = []
    for kind, duration, slot, gap in specs:
        now += gap
        op = DeviceOp(kind=kind, duration=duration,
                      stream_id=streams[slot], name="k")
        gpu.enqueue(op, now=now)
        ops.append(op)
    return gpu, ops


class TestSchedulerInvariants:
    @given(st.lists(_op_specs, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_ops_never_start_before_enqueue(self, specs):
        _, ops = _run_schedule(specs)
        for op in ops:
            assert op.start_time >= op.enqueue_time - 1e-12

    @given(st.lists(_op_specs, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_stream_order_preserved(self, specs):
        gpu, _ = _run_schedule(specs)
        for stream in gpu.streams.values():
            prev_end = 0.0
            for op in stream.ops:
                assert op.start_time >= prev_end - 1e-12
                prev_end = op.end_time

    @given(st.lists(_op_specs, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_engines_never_overlap(self, specs):
        gpu, ops = _run_schedule(specs)
        from repro.sim.device import _ENGINE_FOR_KIND

        by_engine: dict[str, list] = {}
        for op in ops:
            by_engine.setdefault(_ENGINE_FOR_KIND[op.kind], []).append(op)
        for engine_ops in by_engine.values():
            engine_ops.sort(key=lambda o: o.start_time)
            for a, b in zip(engine_ops, engine_ops[1:]):
                assert b.start_time >= a.end_time - 1e-12

    @given(st.lists(_op_specs, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_busy_until_is_max_end(self, specs):
        gpu, ops = _run_schedule(specs)
        assert gpu.busy_until() == max(op.end_time for op in ops)

    @given(st.lists(_op_specs, min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_durations_preserved_by_scheduling(self, specs):
        _, ops = _run_schedule(specs)
        for (kind, duration, slot, gap), op in zip(specs, ops):
            assert abs((op.end_time - op.start_time) - duration) < 1e-12
