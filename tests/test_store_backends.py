"""Shared contract suite for report-store backends
(`repro.service.store`, `repro.service.sqlite`).

Runs against both registered backends.  The load-bearing clause is
byte identity: ``get_bytes`` must return exactly
``json.dumps(report, indent=2).encode()`` as written at put time, on
every backend — that is what makes a report fetched from a sqlite
coordinator byte-identical to one fetched from a file coordinator,
and both identical to the serial CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.core.diogenes import DiogenesConfig
from repro.exec.jobs import WorkloadSpec
from repro.fleet.backends import backend_names, make_store
from repro.service.store import report_identity

BACKENDS = backend_names()

APP = "synthetic-unnecessary-sync"


def _identity(name=APP, params=None):
    import repro.core.cli as cli

    cli._load_workloads()
    spec = WorkloadSpec.from_params(name, params or {"iterations": 4})
    return report_identity(spec, DiogenesConfig())


@pytest.fixture(params=BACKENDS)
def store_factory(request, tmp_path):
    backend = request.param
    opened = []

    def factory():
        store = make_store(backend, tmp_path / "store")
        opened.append(store)
        return store

    factory.backend = backend
    yield factory
    for store in opened:
        store.close()


def _raw_bytes(raw):
    """Materialise a ``get_bytes`` result (mmap-backed or plain)."""
    if hasattr(raw, "view"):
        data = bytes(raw.view)
        raw.close()
        return data
    return bytes(raw)


REPORT = {"schema_version": 1, "workload": APP,
          "problems": [{"kind": "unnecessary_sync", "count": 3}],
          "execution_time": {"wall": 1.25}}


class TestStoreContract:
    def test_put_get_roundtrip_and_contains(self, store_factory):
        store = store_factory()
        identity = _identity()
        key = store.put(identity, REPORT, job_id="job-000001")
        assert key == identity.key()
        assert store.get(key) == REPORT
        assert store.contains(key)
        assert not store.contains("nope")
        assert len(store) == 1

    def test_get_bytes_is_exact_put_time_encoding(self, store_factory):
        store = store_factory()
        key = store.put(_identity(), REPORT)
        raw = store.get_bytes(key)
        expected = json.dumps(REPORT, indent=2).encode()
        assert _raw_bytes(raw) == expected
        assert store.get_bytes("missing") is None

    def test_refuses_unstamped_report(self, store_factory):
        store = store_factory()
        with pytest.raises(ValueError, match="schema_version"):
            store.put(_identity(), {"workload": APP})
        assert len(store) == 0

    def test_envelope_carries_identity_and_size(self, store_factory):
        store = store_factory()
        identity = _identity()
        key = store.put(identity, REPORT, job_id="job-000007")
        envelope = store.get_envelope(key)
        assert envelope["key"] == key
        assert envelope["identity"] == dict(identity)
        assert envelope["job_id"] == "job-000007"
        assert envelope["body_bytes"] == \
            len(json.dumps(REPORT, indent=2).encode())

    def test_persists_across_reopen(self, store_factory):
        store = store_factory()
        key = store.put(_identity(), REPORT, job_id="job-000001")
        store.put_trace("job-000001", {"trace_id": "t1", "spans": []})
        reloaded = store_factory()
        assert reloaded.get(key) == REPORT
        assert reloaded.contains(key)
        assert reloaded.get_trace("job-000001")["trace_id"] == "t1"
        (entry,) = reloaded.history()
        assert entry["key"] == key

    def test_history_records_and_filters(self, store_factory):
        store = store_factory()
        store.put(_identity(), REPORT, job_id="job-000001")
        other = _identity("synthetic-quiet", {})
        store.put(other, {"schema_version": 1})
        assert [e["seq"] for e in store.history()] == [0, 1]
        assert [e["workload"] for e in store.history("synthetic-quiet")] == \
            ["synthetic-quiet"]
        entry = store.history(APP)[0]
        assert entry["job_id"] == "job-000001"
        assert entry["schema_version"] == 1

    def test_put_is_idempotent_per_key(self, store_factory):
        store = store_factory()
        identity = _identity()
        key1 = store.put(identity, REPORT)
        key2 = store.put(identity, REPORT)
        assert key1 == key2
        assert len(store) == 1
        assert len(store.history()) == 2  # history is append-only

    def test_trace_roundtrip(self, store_factory):
        store = store_factory()
        payload = {"trace_id": "abc", "spans": [{"name": "service.job"}]}
        store.put_trace("job-000009", payload)
        assert store.get_trace("job-000009") == payload
        assert store.get_trace("job-missing") is None

    def test_stats_and_prune_keep_newest(self, store_factory):
        store = store_factory()
        keys = []
        for i in range(4):
            identity = _identity(params={"iterations": 4 + i})
            keys.append(store.put(identity,
                                  {"schema_version": 1, "i": i,
                                   "pad": "x" * 2000}))
        stats = store.stats()
        assert stats["reports"] == 4 and stats["bytes"] > 0
        per_report = stats["bytes"] // 4
        result = store.prune(max_bytes=per_report * 2 + per_report // 2)
        assert result["reports"] == 2 and result["removed"] > 0
        # Newest survive; evicted keys read as misses again.
        assert store.contains(keys[-1]) and store.contains(keys[-2])
        assert not store.contains(keys[0]) and not store.contains(keys[1])
        assert len(store) == 2
        assert len(store.history()) == 4  # history untouched
