"""Property-based simulator invariants over randomized workloads.

A seeded :class:`random.Random` generator builds arbitrary host/device
programs — CPU work, kernels, copies and memsets across several
streams, stream-scoped and device-wide synchronizations — and drives
them through the real :class:`~repro.sim.machine.Machine`.  Seeds are
**fixed** (``range(N)`` via parametrize), so a failure is reproducible
by seed number, every CI run checks the same programs, and the suite
is safe to run in parallel with anything else (no wall-clock, no
shared state, no randomness outside the seeded generator).

Invariants checked, per the executor-determinism contract:

* **virtual time is monotone per stream** — ops on one stream start at
  or after their enqueue and at or after the previous op's end;
* **every CWait ends at-or-after its matched GWork** — a host wait on
  a stream (or the device) cannot return before every operation in its
  scope has completed;
* **total runtime equals the max over engine completion times** — with
  the host viewed as one more engine: after the terminal device-wide
  synchronization, the clock reads exactly
  ``max(host progress, gpu.busy_until())``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.sim.ops import DeviceOp, OpKind

SEEDS = range(25)

_COMPLETING_KINDS = [OpKind.KERNEL, OpKind.MEMSET, OpKind.COPY_H2D,
                     OpKind.COPY_D2H, OpKind.COPY_D2D]


@dataclass
class _Wait:
    """One host synchronization: its scope, window, and matched ops."""

    scope: str                       # "device" or "stream"
    start: float
    end: float
    matched_ops: list[DeviceOp] = field(default_factory=list)


@dataclass
class _Program:
    machine: Machine
    ops: list[DeviceOp]
    waits: list[_Wait]
    final_cpu_progress: float        # host time entering the final sync


def _generate(seed: int) -> _Program:
    """Random program: interleaved CPU work, device ops, and syncs.

    Always ends with a device-wide synchronization so "the program
    finished" is well defined for the total-runtime invariant.
    """
    rng = random.Random(seed)
    compute_engines = rng.choice([1, 1, 2, 4])
    machine = Machine(MachineConfig(compute_engines=compute_engines))
    gpu = machine.gpu
    streams = [0] + [gpu.create_stream() for _ in range(rng.randint(0, 3))]
    ops: list[DeviceOp] = []
    waits: list[_Wait] = []

    def wait_on(scope: str, stream_id: int | None = None) -> None:
        if scope == "device":
            deadline = gpu.busy_until()
            matched = list(ops)
        else:
            deadline = gpu.stream_completion_time(stream_id)
            matched = [op for op in ops if op.stream_id == stream_id]
        start = machine.clock.now
        machine.cpu_wait_until(deadline, f"{scope}-sync")
        waits.append(_Wait(scope=scope, start=start,
                           end=machine.clock.now, matched_ops=matched))

    for _ in range(rng.randint(1, 60)):
        action = rng.random()
        if action < 0.35:
            machine.cpu_work(rng.uniform(0.0, 0.3), "app")
        elif action < 0.80:
            op = DeviceOp(kind=rng.choice(_COMPLETING_KINDS),
                          duration=rng.uniform(0.0, 0.5),
                          stream_id=rng.choice(streams),
                          name="gen")
            gpu.enqueue(op, now=machine.clock.now)
            ops.append(op)
        elif action < 0.90:
            wait_on("stream", rng.choice(streams))
        else:
            wait_on("device")

    final_cpu_progress = machine.clock.now
    wait_on("device")
    return _Program(machine=machine, ops=ops, waits=waits,
                    final_cpu_progress=final_cpu_progress)


@pytest.fixture(scope="module")
def programs() -> dict[int, _Program]:
    return {seed: _generate(seed) for seed in SEEDS}


@pytest.mark.parametrize("seed", SEEDS)
class TestSimulatorInvariants:
    def test_virtual_time_is_monotone_per_stream(self, programs, seed):
        program = programs[seed]
        for stream in program.machine.gpu.streams.values():
            prev_end = 0.0
            for op in stream.ops:
                assert op.start_time >= op.enqueue_time
                assert op.start_time >= prev_end
                assert op.end_time >= op.start_time
                prev_end = op.end_time

    def test_every_cwait_ends_at_or_after_its_matched_gwork(self, programs,
                                                            seed):
        program = programs[seed]
        assert program.waits, "every generated program ends with a sync"
        for wait in program.waits:
            for op in wait.matched_ops:
                assert wait.end >= op.end_time, (
                    f"seed {seed}: a {wait.scope} wait returned at "
                    f"{wait.end} before op {op.op_id} finished at "
                    f"{op.end_time}"
                )

    def test_wait_windows_never_run_backwards(self, programs, seed):
        program = programs[seed]
        for wait in program.waits:
            assert wait.end >= wait.start

    def test_total_runtime_is_max_over_engine_completions(self, programs,
                                                          seed):
        program = programs[seed]
        gpu = program.machine.gpu
        expected = max(program.final_cpu_progress, gpu.busy_until())
        assert program.machine.clock.now == expected

    def test_timeline_wait_intervals_match_recorded_waits(self, programs,
                                                          seed):
        # Ground-truth CWait intervals on the CPU timeline are exactly
        # the generator's nonzero wait windows, in order.
        program = programs[seed]
        recorded = [(iv.start, iv.end)
                    for iv in program.machine.timeline.intervals("wait")]
        nonzero = [(w.start, w.end)
                   for w in program.waits if w.end > w.start]
        assert recorded == nonzero

    def test_engine_busy_time_is_sum_of_op_durations(self, programs, seed):
        program = programs[seed]
        gpu = program.machine.gpu
        total_busy = sum(e.busy_time for e in gpu.engines.values())
        total_duration = sum(op.duration for op in program.ops)
        assert total_busy == pytest.approx(total_duration)


def test_generation_is_deterministic_per_seed():
    """The generator itself must be reproducible: same seed, same run."""
    a, b = _generate(7), _generate(7)
    assert [(op.kind, op.stream_id, op.start_time, op.end_time)
            for op in a.ops] == [
           (op.kind, op.stream_id, op.start_time, op.end_time)
            for op in b.ops]
    assert [(w.scope, w.start, w.end) for w in a.waits] == [
        (w.scope, w.start, w.end) for w in b.waits]
