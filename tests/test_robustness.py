"""Failure-injection and robustness tests.

Instrumentation tooling must fail loudly and leave the target clean;
these tests inject faults at each layer and check both properties.
"""

import math

import numpy as np
import pytest

from repro.apps.base import Workload
from repro.apps.synthetic import UnnecessarySyncApp
from repro.core.diogenes import Diogenes
from repro.core.stage1_baseline import run_stage1
from repro.core.diogenes import DiogenesConfig
from repro.driver.errors import OutOfMemoryError
from repro.instr.probes import Probe
from repro.sim.device import InfiniteWaitError


class TestWorkloadFaults:
    def test_workload_exception_propagates_from_stage(self):
        class ExplodingApp(Workload):
            name = "exploding"

            def run(self, ctx):
                ctx.cudart.cudaMalloc(64)
                raise RuntimeError("application bug")

        with pytest.raises(RuntimeError, match="application bug"):
            Diogenes(ExplodingApp()).run()

    def test_hung_workload_surfaces_infinite_wait(self):
        class HangingApp(Workload):
            name = "hanging"

            def run(self, ctx):
                ctx.cudart.cudaLaunchKernel("never", math.inf)
                ctx.cudart.cudaDeviceSynchronize()

        with pytest.raises(InfiniteWaitError):
            Diogenes(HangingApp()).run()

    def test_device_oom_propagates(self):
        from repro.sim.machine import MachineConfig

        class HungryApp(Workload):
            name = "hungry"

            def run(self, ctx):
                ctx.cudart.cudaMalloc(64 * 2**30)  # 64 GiB

        with pytest.raises(OutOfMemoryError):
            Diogenes(HungryApp(),
                     DiogenesConfig(machine_config=MachineConfig())).run()

    def test_probes_detached_after_workload_failure(self):
        class ExplodingApp(Workload):
            name = "exploding"

            def run(self, ctx):
                raise RuntimeError("boom")

        app = ExplodingApp()
        with pytest.raises(RuntimeError):
            run_stage1(app, DiogenesConfig())
        # A fresh, unrelated run must be unaffected: stage probes were
        # detached by the finally blocks (no cross-contamination).
        report = Diogenes(UnnecessarySyncApp(iterations=2)).run()
        assert len(report.analysis.problems) == 2


class TestInstrumentationFaults:
    def test_probe_callback_exception_is_loud(self, ctx):
        def bad_probe(record):
            raise ValueError("instrumentation bug")

        ctx.driver.dispatch.attach(Probe({"cudaMalloc"}, entry=bad_probe))
        with pytest.raises(ValueError, match="instrumentation bug"):
            ctx.cudart.cudaMalloc(64)

    def test_dispatch_frames_unwound_after_probe_exception(self, ctx):
        probe = Probe({"cudaMalloc"},
                      entry=lambda r: (_ for _ in ()).throw(ValueError()))
        ctx.driver.dispatch.attach(probe)
        with pytest.raises(ValueError):
            ctx.cudart.cudaMalloc(64)
        assert ctx.driver.dispatch.current_record is None
        ctx.driver.dispatch.detach(probe)
        ctx.cudart.cudaMalloc(64)  # the driver still works

    def test_access_hook_exception_is_loud(self, ctx):
        def bad_hook(event):
            raise ValueError("hook bug")

        ctx.hostspace.hooks.add(bad_hook)
        buf = ctx.host_array(8)
        with pytest.raises(ValueError, match="hook bug"):
            buf.read()


class TestApiMisuse:
    def test_memcpy_size_overrun_rejected(self, ctx):
        from repro.driver.errors import InvalidValueError

        dev = ctx.cudart.cudaMalloc(64)
        host = ctx.host_array(1024)
        with pytest.raises((InvalidValueError, IndexError)):
            ctx.cudart.cudaMemcpy(dev, host, nbytes=100_000)

    def test_double_free_is_loud(self, ctx):
        from repro.driver.errors import InvalidHandleError

        dev = ctx.cudart.cudaMalloc(64)
        ctx.cudart.cudaFree(dev)
        with pytest.raises(InvalidHandleError):
            ctx.cudart.cudaFree(dev)

    def test_launch_on_destroyed_stream_rejected(self, ctx):
        from repro.sim.device import DeviceError

        sid = ctx.cudart.cudaStreamCreate()
        ctx.cudart.cudaStreamDestroy(sid)
        with pytest.raises(DeviceError):
            ctx.cudart.cudaLaunchKernel("k", 1e-4, stream=sid)

    def test_kernel_write_to_bad_target_rejected(self, ctx):
        from repro.driver.errors import InvalidValueError

        with pytest.raises(InvalidValueError):
            ctx.cudart.cudaLaunchKernel(
                "k", 1e-4, writes=[(np.zeros(4), np.zeros(4))])


class TestScriptedAppValidation:
    def test_unknown_scripted_op_rejected(self):
        from repro.apps.synthetic import ScriptedApp

        with pytest.raises(ValueError, match="unknown scripted op"):
            ScriptedApp([("teleport",)]).execute()
