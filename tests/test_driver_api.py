"""Unit tests for the driver API: synchronization semantics and shadows.

The implicit/conditional synchronization matrix (paper §2.2) is the
heart of the reproduction; each cell gets a test.
"""

import math

import numpy as np
import pytest

from repro.cupti import CuptiSubscription
from repro.driver.api import INTERNAL_WAIT_SYMBOL
from repro.driver.errors import InvalidHandleError, InvalidValueError, OutOfMemoryError
from repro.driver.handles import DeviceAllocator
from repro.instr.probes import Probe
from repro.sim.device import InfiniteWaitError


def wait_log(ctx):
    """Attach a probe logging every internal wait's duration."""
    waits = []
    ctx.driver.dispatch.attach(Probe(
        {INTERNAL_WAIT_SYMBOL},
        exit=lambda r: waits.append(r.meta.get("wait_duration", 0.0)),
    ))
    return waits


class TestDeviceAllocator:
    def test_alignment(self):
        alloc = DeviceAllocator()
        assert alloc.allocate(100).dptr % 256 == 0
        assert alloc.allocate(100).dptr % 256 == 0

    def test_oom(self):
        alloc = DeviceAllocator(capacity_bytes=1000)
        alloc.allocate(800)
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(300)

    def test_free_returns_capacity(self):
        alloc = DeviceAllocator(capacity_bytes=1000)
        buf = alloc.allocate(800)
        alloc.free(buf)
        alloc.allocate(900)  # must not raise

    def test_double_free_raises(self):
        alloc = DeviceAllocator()
        buf = alloc.allocate(10)
        alloc.free(buf)
        with pytest.raises(InvalidHandleError):
            alloc.free(buf)

    def test_counters(self):
        alloc = DeviceAllocator()
        a = alloc.allocate(100)
        alloc.allocate(200)
        alloc.free(a)
        assert (alloc.alloc_count, alloc.free_count) == (2, 1)
        assert alloc.live_bytes == 200
        assert alloc.peak_live_bytes == 300

    def test_shadow_roundtrip(self):
        buf = DeviceAllocator().allocate(64)
        buf.write_shadow(np.arange(8, dtype=np.float64))
        back = buf.read_shadow(0, 64).view(np.float64)
        assert np.array_equal(back, np.arange(8))

    def test_shadow_bounds(self):
        buf = DeviceAllocator().allocate(16)
        with pytest.raises(InvalidValueError):
            buf.read_shadow(0, 17)

    def test_use_after_free(self):
        alloc = DeviceAllocator()
        buf = alloc.allocate(16)
        alloc.free(buf)
        with pytest.raises(InvalidHandleError):
            buf.read_shadow()


class TestImplicitSyncs:
    def test_cumemfree_synchronizes_whole_device(self, ctx):
        waits = wait_log(ctx)
        buf = ctx.driver.cuMemAlloc(1024)
        ctx.driver.cuLaunchKernel("k", 1e-3)
        ctx.driver.cuMemFree(buf)
        assert len(waits) == 1
        assert waits[0] == pytest.approx(1e-3, rel=0.05)

    def test_sync_memcpy_htod_waits_for_copy(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(1 << 20)
        host = ctx.host_array(1 << 17)
        ctx.driver.cuMemcpyHtoD(dev, host)
        assert len(waits) == 1
        assert waits[0] > 0

    def test_sync_memcpy_dtoh_waits_for_producer_kernel(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(1024)
        host = ctx.host_array(128)
        ctx.driver.cuLaunchKernel("produce", 2e-3)
        ctx.driver.cuMemcpyDtoH(host, dev)
        # Copy is stream-ordered behind the kernel, so the wait spans it.
        assert waits[0] >= 2e-3 * 0.9


class TestConditionalSyncs:
    def test_async_dtoh_to_pageable_synchronizes(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        pageable = ctx.host_array(512)
        ctx.driver.cuMemcpyDtoHAsync(pageable, dev)
        assert len(waits) == 1

    def test_async_dtoh_to_pinned_does_not_synchronize(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        pinned = ctx.driver.cuMemAllocHost(512)
        ctx.driver.cuMemcpyDtoHAsync(pinned, dev)
        assert waits == []

    def test_async_htod_from_pageable_synchronizes(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        ctx.driver.cuMemcpyHtoDAsync(dev, ctx.host_array(512))
        assert len(waits) == 1

    def test_async_htod_from_pinned_does_not_synchronize(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        ctx.driver.cuMemcpyHtoDAsync(dev, ctx.driver.cuMemAllocHost(512))
        assert waits == []

    def test_memset_on_device_memory_is_async(self, ctx):
        waits = wait_log(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        ctx.driver.cuMemsetD8(dev, 0)
        assert waits == []

    def test_memset_on_managed_memory_synchronizes(self, ctx):
        waits = wait_log(ctx)
        managed = ctx.driver.cuMemAllocManaged(512)
        ctx.driver.cuLaunchKernel("k", 1e-3)
        ctx.driver.cuMemsetD8(managed, 0)
        assert len(waits) == 1
        assert waits[0] == pytest.approx(1e-3, rel=0.1)

    def test_memset_on_managed_sets_host_pages(self, ctx):
        managed = ctx.driver.cuMemAllocManaged(64)
        managed.managed_host.raw_write_bytes(
            np.full(512, 7, dtype=np.uint8))
        ctx.driver.cuMemsetD8(managed, 0)
        assert not np.any(managed.managed_host.raw_bytes())


class TestExplicitSyncs:
    def test_ctx_synchronize_drains_device(self, ctx):
        ctx.driver.cuLaunchKernel("k", 5e-3)
        ctx.driver.cuCtxSynchronize()
        assert ctx.machine.now >= 5e-3

    def test_stream_synchronize_waits_only_its_stream(self, ctx):
        s1 = ctx.driver.cuStreamCreate()
        ctx.driver.cuLaunchKernel("long", 10e-3, stream=0)
        dev = ctx.driver.cuMemAlloc(4096)
        pinned = ctx.driver.cuMemAllocHost(512)
        ctx.driver.cuMemcpyDtoHAsync(pinned, dev, stream=s1)
        ctx.driver.cuStreamSynchronize(s1)
        assert ctx.machine.now < 5e-3  # did not wait for the stream-0 kernel

    def test_infinite_kernel_makes_sync_raise(self, ctx):
        ctx.driver.cuLaunchKernel("never", math.inf)
        with pytest.raises(InfiniteWaitError):
            ctx.driver.cuCtxSynchronize()


class TestDataMovement:
    def test_kernel_writes_visible_after_dtoh(self, ctx):
        dev = ctx.driver.cuMemAlloc(8 * 128)
        out = ctx.host_array(128)
        ctx.driver.cuLaunchKernel("fill", 1e-4,
                                  writes=[(dev, np.full(128, 3.5))])
        ctx.driver.cuMemcpyDtoH(out, dev)
        assert np.all(np.asarray(out.read()) == 3.5)

    def test_htod_then_dtoh_roundtrip(self, ctx):
        dev = ctx.driver.cuMemAlloc(8 * 64)
        src = ctx.host_array(64)
        src.write(np.arange(64, dtype=np.float64))
        dst = ctx.host_array(64)
        ctx.driver.cuMemcpyHtoD(dev, src)
        ctx.driver.cuMemcpyDtoH(dst, dev)
        assert np.array_equal(np.asarray(dst.read()), np.arange(64))

    def test_dtod_copies_shadow(self, ctx):
        a = ctx.driver.cuMemAlloc(64)
        b = ctx.driver.cuMemAlloc(64)
        a.write_shadow(np.arange(8, dtype=np.float64))
        ctx.driver.cuMemcpyDtoD(b, a)
        assert np.array_equal(b.read_shadow(), a.read_shadow())

    def test_kernel_writes_to_managed_demand_fault_to_host(self, ctx):
        managed = ctx.driver.cuMemAllocManaged(128)
        ctx.driver.cuLaunchKernel(
            "produce", 1e-4, writes=[(managed, np.full(128, 2.0))])
        # The result lives on the device until the CPU touches it...
        assert managed.managed_residency == "device"
        # ...at which point the driver demand-migrates (and blocks).
        values = np.asarray(managed.managed_host.read())
        assert np.all(values == 2.0)
        assert managed.managed_residency == "host"
        assert ctx.machine.now >= 1e-4  # waited for the producing kernel


class TestCuptiGaps:
    """The black-box reporting gaps of §2.2, cell by cell."""

    def _with_cupti(self, ctx):
        sub = CuptiSubscription(machine=ctx.machine)
        ctx.driver.attach_cupti(sub)
        return sub

    def test_explicit_sync_produces_sync_record(self, ctx):
        sub = self._with_cupti(ctx)
        ctx.driver.cuLaunchKernel("k", 1e-4)
        ctx.driver.cuCtxSynchronize()
        assert len(sub.sync_records) == 1
        assert sub.sync_records[0].api_name == "cuCtxSynchronize"

    def test_stream_sync_produces_sync_record(self, ctx):
        sub = self._with_cupti(ctx)
        ctx.driver.cuStreamSynchronize(0)
        assert [r.kind for r in sub.sync_records] == ["stream"]

    def test_implicit_free_sync_has_no_sync_record(self, ctx):
        sub = self._with_cupti(ctx)
        buf = ctx.driver.cuMemAlloc(1024)
        ctx.driver.cuLaunchKernel("k", 1e-3)
        ctx.driver.cuMemFree(buf)
        assert sub.sync_records == []
        assert any(r.name == "cuMemFree" for r in sub.api_records)

    def test_conditional_async_sync_has_no_sync_record(self, ctx):
        sub = self._with_cupti(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        ctx.driver.cuMemcpyDtoHAsync(ctx.host_array(512), dev)
        assert sub.sync_records == []
        assert len(sub.memcpy_records) == 1  # the copy itself is visible

    def test_sync_memcpy_has_no_sync_record(self, ctx):
        sub = self._with_cupti(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        ctx.driver.cuMemcpyHtoD(dev, ctx.host_array(512))
        assert sub.sync_records == []

    def test_kernel_and_memset_activities_recorded(self, ctx):
        sub = self._with_cupti(ctx)
        dev = ctx.driver.cuMemAlloc(4096)
        ctx.driver.cuLaunchKernel("k", 1e-4)
        ctx.driver.cuMemsetD8(dev, 0)
        assert len(sub.kernel_records) == 1
        assert len(sub.memset_records) == 1
