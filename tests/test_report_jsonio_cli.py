"""Tests for report rendering, JSON export, and the CLI."""

import json

import pytest

from repro.apps.cumf_als import CumfAls
from repro.apps.synthetic import DuplicateTransferApp, UnnecessarySyncApp
from repro.core import report as reports
from repro.core.cli import build_parser, main
from repro.core.diogenes import Diogenes
from repro.core.jsonio import dumps_report, report_to_json
from repro.core.sequences import subsequence


@pytest.fixture(scope="module")
def als_report():
    return Diogenes(CumfAls(iterations=3)).run()


@pytest.fixture(scope="module")
def simple_report():
    return Diogenes(UnnecessarySyncApp(iterations=4)).run()


class TestRendering:
    def test_overview_has_folds_and_sequences(self, als_report):
        text = reports.render_overview(als_report)
        assert "Diogenes Overview Display" in text
        assert "Fold on cudaFree" in text
        assert "Sequence starting at call" in text
        assert "% of execution time" in text or "%" in text

    def test_fold_expansion_shows_conditional_note(self, als_report):
        fold = als_report.api_folds[0]
        text = reports.render_fold_expansion(als_report, fold)
        assert "Fold on" in text
        assert "Conditionally unnecessary" in text

    def test_sequence_render_matches_figure6_format(self, als_report):
        seq = als_report.sequences[0]
        text = reports.render_sequence(als_report, seq)
        assert text.startswith("Time Recoverable:")
        assert "Number of Sync Issues: 23 Number of Transfer Issues: 5" in text
        assert "cudaFree in als.cpp at line 856" in text

    def test_subsequence_render_matches_figure8_format(self, als_report):
        seq = als_report.sequences[0]
        sub = subsequence(als_report.analysis, seq, 10, 23)
        text = reports.render_subsequence(als_report, sub, 10)
        assert "Time Recoverable In Subsequence" in text
        assert "10. cudaFree in als.cpp at line 856" in text
        assert "23. cudaFree in als.cpp at line 987" in text

    def test_problem_list_is_ranked(self, simple_report):
        text = reports.render_problem_list(simple_report)
        assert "Unnecessary synchronization" in text
        assert "Estimated total recoverable" in text

    def test_overhead_render(self, simple_report):
        text = reports.render_overhead(simple_report)
        assert "x baseline" in text
        assert "stage3_memtrace" in text

    def test_full_report_renders(self, als_report):
        text = reports.render_full_report(als_report)
        assert len(text) > 500


class TestJsonExport:
    def test_export_is_json_serializable(self, als_report):
        blob = dumps_report(als_report)
        parsed = json.loads(blob)
        assert parsed["workload"] == "cumf-als"

    def test_export_contains_all_sections(self, als_report):
        data = report_to_json(als_report)
        for key in ("stages", "problems", "groups", "sequences", "overhead",
                    "execution_time", "total_est_benefit"):
            assert key in data

    def test_problem_entries_carry_locations(self, als_report):
        data = report_to_json(als_report)
        locations = {p["location"] for p in data["problems"]}
        assert any("als.cpp" in loc for loc in locations)

    def test_sequence_entries_exported(self, als_report):
        data = report_to_json(als_report)
        seq = data["sequences"][0]
        assert seq["length"] == len(seq["entries"])
        assert seq["sync_issues"] == 23

    def test_fold_expansion_exported(self, als_report):
        data = report_to_json(als_report)
        fold = data["groups"]["api_folds"][0]
        assert "expansion" in fold
        assert fold["total_benefit"] >= 0

    def test_stage1_roundtrips_sites(self, als_report):
        data = report_to_json(als_report)
        site = data["stages"]["stage1"]["sync_sites"][0]
        assert {"api_name", "stack", "count", "total_wait"} <= set(site)

    def test_overhead_multiple_positive(self, als_report):
        data = report_to_json(als_report)
        assert data["overhead"]["overhead_multiple"] > 1.0


class TestCli:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "amg", "--view", "overview"])
        assert args.workload == "amg"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "cumf-als" in out
        assert "rodinia-gaussian" in out

    def test_run_overview(self, capsys):
        assert main(["run", "synthetic-unnecessary-sync",
                     "--view", "overview"]) == 0
        assert "Diogenes Overview Display" in capsys.readouterr().out

    def test_run_with_json_export(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        assert main(["run", "synthetic-duplicate-transfer",
                     "--view", "problems", "--json", str(out_file)]) == 0
        parsed = json.loads(out_file.read_text())
        assert parsed["workload"] == "synthetic-duplicate-transfer"

    def test_run_subsequence_requires_range(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "synthetic-unnecessary-sync",
                  "--view", "subsequence"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            main(["run", "no-such-app"])

    def test_fold_view(self, capsys):
        assert main(["run", "synthetic-unnecessary-sync", "--view", "fold",
                     "--fold", "cudaDeviceSynchronize"]) == 0
        assert "Fold on cudaDeviceSynchronize" in capsys.readouterr().out

    def test_unknown_fold_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "synthetic-unnecessary-sync", "--view", "fold",
                  "--fold", "cudaNothing"])


class TestStageRoundTrip:
    """Stage data exports losslessly and re-analyses identically."""

    def test_stage_data_roundtrip_preserves_analysis(self, als_report):
        import json as json_mod

        from repro.core.jsonio import analyze_from_json, stages_to_json

        blob = json_mod.dumps(stages_to_json(als_report))
        reanalysed = analyze_from_json(json_mod.loads(blob))
        original = als_report.analysis
        assert reanalysed.execution_time == original.execution_time
        assert len(reanalysed.problems) == len(original.problems)
        assert reanalysed.total_benefit == pytest.approx(
            original.total_benefit)
        assert [p.location() for p in reanalysed.problems] == \
            [p.location() for p in original.problems]

    def test_reanalysis_with_different_settings(self, als_report):
        from repro.core.jsonio import analyze_from_json, stages_to_json

        # A huge misplaced threshold disables misplaced classification;
        # everything else must still work from the serialized data.
        reanalysed = analyze_from_json(stages_to_json(als_report),
                                       misplaced_min_delay=1e9)
        from repro.core.graph import ProblemKind

        assert not any(p.kind is ProblemKind.MISPLACED_SYNC
                       for p in reanalysed.problems)

    def test_stage1_roundtrip(self, als_report):
        from repro.core.records import Stage1Data

        back = Stage1Data.from_json(als_report.stage1.to_json())
        assert back.wait_symbol == als_report.stage1.wait_symbol
        assert back.synchronizing_functions == \
            als_report.stage1.synchronizing_functions
        assert len(back.sync_sites) == len(als_report.stage1.sync_sites)
        assert back.sync_sites[0].stack.address_key() == \
            als_report.stage1.sync_sites[0].stack.address_key()

    def test_stage4_roundtrip(self, als_report):
        from repro.core.records import Stage4Data

        back = Stage4Data.from_json(als_report.stage4.to_json())
        assert back.delay_by_site() == als_report.stage4.delay_by_site()


class TestCliParams:
    def test_param_parsing_types(self):
        from repro.core.cli import parse_params

        params = parse_params(["iterations=7", "kernel_time=1e-3",
                               "fixed=true", "fix=full"])
        assert params == {"iterations": 7, "kernel_time": 1e-3,
                          "fixed": True, "fix": "full"}

    def test_param_flows_to_workload(self, capsys):
        from repro.core.cli import main

        assert main(["run", "synthetic-unnecessary-sync",
                     "--view", "problems", "--param", "iterations=2"]) == 0
        out = capsys.readouterr().out
        # two in-loop unnecessary syncs -> exactly 2 problems
        assert "  2. " in out and "  3. " not in out

    def test_bad_param_shape_rejected(self):
        from repro.core.cli import main

        with pytest.raises(SystemExit):
            main(["run", "synthetic-unnecessary-sync", "--param", "oops"])

    def test_unknown_param_rejected(self):
        from repro.core.cli import main

        with pytest.raises(SystemExit):
            main(["run", "synthetic-unnecessary-sync",
                  "--param", "nonsense=1"])

    def test_fixes_view(self, capsys):
        from repro.core.cli import main

        assert main(["run", "synthetic-unnecessary-sync",
                     "--view", "fixes"]) == 0
        assert "remove_synchronization" in capsys.readouterr().out


class TestRenderEdgeCases:
    def test_long_sequence_listing_elides_middle(self):
        from repro.apps.synthetic import UnnecessarySyncApp

        # 40 distinct problem entries in one sequence would be unwieldy;
        # force one by scripting many one-off sync sites.
        from repro.apps.synthetic import ScriptedApp

        script = []
        for _ in range(20):
            script.append(("launch", 100e-6))
            script.append(("sync",))
        report = Diogenes(ScriptedApp(script)).run()
        seq = report.sequences[0]
        assert seq.length == 20
        text = reports.render_sequence(report, seq, elide_over=10)
        assert "..." in text
        assert "1. " in text
        assert f"{seq.length}. " in text

    def test_overview_limit(self, als_report):
        text = reports.render_overview(als_report, limit=1)
        body = [l for l in text.splitlines()
                if "Fold on" in l or "Sequence" in l]
        assert len(body) == 1

    def test_problem_list_truncation_note(self):
        from repro.apps.synthetic import UnnecessarySyncApp

        report = Diogenes(UnnecessarySyncApp(iterations=30)).run()
        text = reports.render_problem_list(report, limit=5)
        assert "... and 25 more" in text
