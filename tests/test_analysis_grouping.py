"""Tests for stage-5 classification, grouping, and sequences."""

import pytest

from repro.apps.synthetic import (
    DuplicateTransferApp,
    MisplacedSyncApp,
    QuietApp,
    UnnecessarySyncApp,
)
from repro.apps.cuibm import CuIbm
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.graph import ProblemKind
from repro.core.grouping import expand_fold, group_by_api, group_folded_function, group_single_point
from repro.core.sequences import find_sequences, subsequence


def run_tool(app, **cfg):
    return Diogenes(app, DiogenesConfig(**cfg)).run()


class TestClassification:
    def test_unnecessary_syncs_classified(self):
        report = run_tool(UnnecessarySyncApp(iterations=4))
        kinds = {p.kind for p in report.analysis.problems}
        assert kinds == {ProblemKind.UNNECESSARY_SYNC}
        assert len(report.analysis.problems) == 4

    def test_misplaced_syncs_classified(self):
        report = run_tool(MisplacedSyncApp(iterations=4))
        kinds = {p.kind for p in report.analysis.problems}
        assert ProblemKind.MISPLACED_SYNC in kinds
        misplaced = [p for p in report.analysis.problems
                     if p.kind is ProblemKind.MISPLACED_SYNC]
        assert all(p.first_use_time > 0 for p in misplaced)

    def test_duplicate_transfers_classified(self):
        report = run_tool(DuplicateTransferApp(iterations=4))
        kinds = {p.kind for p in report.analysis.problems}
        assert ProblemKind.UNNECESSARY_TRANSFER in kinds
        dups = report.analysis.transfer_problems()
        assert len(dups) == 3  # first upload is legitimate

    def test_quiet_app_reports_nothing(self):
        report = run_tool(QuietApp(iterations=4))
        assert report.analysis.problems == []
        assert report.total_benefit == 0.0

    def test_misplaced_threshold_filters(self):
        app = MisplacedSyncApp(iterations=3, independent_cpu_time=30e-6)
        report = run_tool(app, misplaced_min_delay=50e-6)
        assert not report.analysis.sync_problems()

    def test_problems_ranked_by_benefit(self):
        report = run_tool(DuplicateTransferApp(iterations=5))
        benefits = [p.est_benefit for p in report.analysis.problems]
        assert benefits == sorted(benefits, reverse=True)

    def test_location_rendering(self):
        report = run_tool(UnnecessarySyncApp(iterations=1))
        p = report.analysis.problems[0]
        assert p.location() == \
            "cudaDeviceSynchronize in synthetic.cpp at line 23"


class TestGrouping:
    def test_single_point_groups_by_call_site(self):
        report = run_tool(UnnecessarySyncApp(iterations=5))
        points = group_single_point(report.analysis)
        assert len(points) == 1
        assert points[0].count == 5
        assert points[0].total_benefit == pytest.approx(
            report.total_benefit)

    def test_api_fold_collects_all_members(self):
        report = run_tool(DuplicateTransferApp(iterations=4))
        folds = group_by_api(report.analysis)
        assert [g.label for g in folds] == ["Fold on cudaMemcpy"]

    def test_folded_function_merges_template_instances(self):
        report = run_tool(CuIbm(steps=2, cg_iters=4))
        folds = group_by_api(report.analysis)
        free_fold = next(g for g in folds if "cudaFree" in g.label)
        rows = expand_fold(free_fold)
        names = [r.base_name for r in rows]
        # Template parameters must be stripped in the folded names.
        assert "thrust::detail::contiguous_storage::allocate" in names
        assert all("<" not in n for n in names)
        # ...but the display keeps one original template-bearing name.
        storage = next(r for r in rows if "contiguous_storage" in r.base_name)
        assert "<" in storage.function

    def test_fold_expansion_sorted_by_benefit(self):
        report = run_tool(CuIbm(steps=2, cg_iters=4))
        free_fold = next(g for g in group_by_api(report.analysis)
                         if "cudaFree" in g.label)
        rows = expand_fold(free_fold)
        benefits = [r.total_benefit for r in rows]
        assert benefits == sorted(benefits, reverse=True)

    def test_folded_function_grouping_distinct_from_single_point(self):
        report = run_tool(CuIbm(steps=2, cg_iters=4))
        points = group_single_point(report.analysis)
        folds = group_folded_function(report.analysis)
        # Same members distributed, totals conserved.
        assert sum(g.count for g in points) == sum(g.count for g in folds)
        # Folding is at least as coarse as point grouping.
        assert len(folds) <= len(points)


class TestSequences:
    def test_loop_pattern_collapses_to_static_sequence(self):
        # Misplaced syncs are necessary, so each forms its own run; the
        # six iterations collapse to one static 1-entry sequence.
        report = run_tool(MisplacedSyncApp(iterations=6))
        sequences = find_sequences(report.analysis, min_length=1)
        assert sequences
        seq = sequences[0]
        assert seq.instance_count == 6
        assert seq.length == 1

    def test_misplaced_sync_terminates_runs(self):
        report = run_tool(MisplacedSyncApp(iterations=6))
        # With the default min length of 2 no multi-op sequence exists.
        assert all(s.length >= 2 for s in report.sequences)

    def test_sequence_issue_counts(self):
        report = run_tool(DuplicateTransferApp(iterations=5))
        seq = report.sequences[0]
        # A duplicate synchronous transfer counts once in each tally.
        assert seq.transfer_issue_count >= 1
        assert seq.sync_issue_count >= seq.transfer_issue_count

    def test_combined_operation_is_single_entry(self):
        report = run_tool(DuplicateTransferApp(iterations=3))
        seq = report.sequences[0]
        for entry in seq.entries:
            if ProblemKind.UNNECESSARY_TRANSFER in entry.kinds:
                assert ProblemKind.UNNECESSARY_SYNC in entry.kinds

    def test_subsequence_estimates_bounded_by_full(self):
        report = run_tool(UnnecessarySyncApp(iterations=8))
        seq = report.sequences[0]
        sub = subsequence(report.analysis, seq, 1, max(1, seq.length // 2))
        assert 0.0 <= sub.est_benefit <= seq.est_benefit * 1.0001

    def test_full_range_subsequence_equals_sequence(self):
        report = run_tool(UnnecessarySyncApp(iterations=6))
        seq = report.sequences[0]
        sub = subsequence(report.analysis, seq, 1, seq.length)
        assert sub.est_benefit == pytest.approx(seq.est_benefit)

    def test_subsequence_bounds_checked(self):
        report = run_tool(UnnecessarySyncApp(iterations=4))
        seq = report.sequences[0]
        with pytest.raises(IndexError):
            subsequence(report.analysis, seq, 0, 1)
        with pytest.raises(IndexError):
            subsequence(report.analysis, seq, 1, seq.length + 1)
        with pytest.raises(IndexError):
            subsequence(report.analysis, seq, 3, 2)

    def test_min_length_filter(self):
        report = run_tool(UnnecessarySyncApp(iterations=5))
        long_only = find_sequences(report.analysis, min_length=10_000)
        assert long_only == []

    def test_sequences_ranked_by_benefit(self):
        report = run_tool(CuIbm(steps=2, cg_iters=4))
        benefits = [s.est_benefit for s in report.sequences]
        assert benefits == sorted(benefits, reverse=True)

    def test_listing_is_numbered(self):
        report = run_tool(UnnecessarySyncApp(iterations=4))
        listing = report.sequences[0].listing()
        assert listing[0].startswith("1. ")
