"""Tests for stage-cache stats and LRU pruning (`diogenes cache`).

The cache is a correctness-neutral accelerator, so eviction can be
blunt — but it must be *LRU*: an entry whose result was served
recently (via ``get``) must outlive an older untouched one, which is
why ``get`` refreshes mtime.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.cli import _human_bytes, _parse_age, _parse_size, main
from repro.exec.cache import ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _fill(cache, n=4, stage="stage1", size=0):
    """n entries with strictly increasing mtimes, oldest first."""
    keys = []
    for i in range(n):
        key = f"{i:02d}{'ab' * 31}"
        payload = {"index": i, "pad": "x" * size}
        cache.put(key, stage, "test-app", payload)
        past = time.time() - (n - i) * 3600  # entry i is (n-i) hours old
        os.utime(cache._path(key), (past, past))
        keys.append(key)
    return keys


class TestStats:
    def test_counts_bytes_and_stage_breakdown(self, cache):
        _fill(cache, n=3, stage="stage1")
        cache.put("ff" * 32, "stage4", "test-app", {"analysis": True})
        stats = cache.stats()
        assert stats["entries"] == 4
        assert stats["by_stage"]["stage1"]["entries"] == 3
        assert stats["by_stage"]["stage4"]["entries"] == 1
        assert stats["total_bytes"] == sum(
            b["bytes"] for b in stats["by_stage"].values())
        assert stats["oldest_age_seconds"] > stats["newest_age_seconds"]

    def test_empty_cache_stats(self, cache):
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["total_bytes"] == 0
        assert stats["oldest_age_seconds"] is None

    def test_entries_are_lru_ordered(self, cache):
        keys = _fill(cache, n=3)
        assert [e.key for e in cache.entries()] == keys  # oldest first
        cache.get(keys[0])  # a hit makes the oldest entry the newest
        assert [e.key for e in cache.entries()] == [keys[1], keys[2],
                                                    keys[0]]


class TestPrune:
    def test_max_age_drops_only_stale_entries(self, cache):
        keys = _fill(cache, n=4)  # ages: 4h, 3h, 2h, 1h
        result = cache.prune(max_age=2.5 * 3600)
        assert result["removed_entries"] == 2
        assert {e.key for e in cache.entries()} == set(keys[2:])

    def test_max_bytes_evicts_least_recently_used_first(self, cache):
        keys = _fill(cache, n=4, size=512)
        entry_size = cache.entries()[0].size_bytes
        result = cache.prune(max_bytes=2 * entry_size)
        assert result["removed_entries"] == 2
        assert result["kept_bytes"] <= 2 * entry_size
        assert {e.key for e in cache.entries()} == set(keys[2:])

    def test_recent_get_saves_an_entry_from_eviction(self, cache):
        keys = _fill(cache, n=3, size=512)
        assert cache.get(keys[0]) is not None  # refreshes recency
        entry_size = max(e.size_bytes for e in cache.entries())
        cache.prune(max_bytes=entry_size)
        # The oldest-written entry survives because it was just used.
        assert [e.key for e in cache.entries()] == [keys[0]]

    def test_unreadable_files_are_always_removed(self, cache):
        _fill(cache, n=1)
        shard = cache.directory / "zz"
        shard.mkdir(parents=True)
        (shard / ("zz" * 32 + ".json")).write_text("{truncated")
        result = cache.prune(max_age=10 * 3600)  # nothing is that old
        assert result["removed_entries"] == 1
        assert len(cache) == 1

    def test_empty_shard_directories_are_cleaned_up(self, cache):
        keys = _fill(cache, n=2)
        cache.prune(max_age=0)
        assert len(cache) == 0
        assert not any(cache._path(k).parent.exists() for k in keys)

    def test_prune_is_correctness_neutral(self, cache):
        (key,) = _fill(cache, n=1)
        cache.prune(max_age=0)
        assert cache.get(key) is None  # a miss, not an error
        cache.put(key, "stage1", "test-app", {"index": 0, "pad": ""})
        assert cache.get(key) == {"index": 0, "pad": ""}

    def test_prune_on_missing_directory_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path / "never-created")
        assert cache.prune(max_bytes=0)["removed_entries"] == 0


class TestCacheCli:
    def test_stats_renders_breakdown(self, cache, capsys):
        _fill(cache, n=2)
        assert main(["cache", "stats", str(cache.directory)]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert "stage1" in out
        assert "least recently used:" in out

    def test_prune_renders_summary_and_prunes(self, cache, capsys):
        _fill(cache, n=4, size=512)
        entry_size = cache.entries()[0].size_bytes
        assert main(["cache", "prune", str(cache.directory),
                     "--max-bytes", str(2 * entry_size)]) == 0
        assert "pruned 2 entries" in capsys.readouterr().out
        assert len(cache) == 2

    def test_prune_requires_a_bound(self, cache):
        with pytest.raises(SystemExit, match="needs --max-bytes"):
            main(["cache", "prune", str(cache.directory)])

    def test_max_age_flag_accepts_suffixed_ages(self, cache, capsys):
        _fill(cache, n=4)  # ages: 4h, 3h, 2h, 1h
        assert main(["cache", "prune", str(cache.directory),
                     "--max-age", "2.5h"]) == 0
        assert "pruned 2 entries" in capsys.readouterr().out


class TestFlagParsing:
    @pytest.mark.parametrize("raw,expected", [
        ("500000", 500000),
        ("100k", 100 * 1024),
        ("100K", 100 * 1024),
        ("2M", 2 * 1024 * 1024),
        ("1.5G", int(1.5 * 1024 ** 3)),
        ("10KB", 10 * 1024),
        (None, None),
    ])
    def test_parse_size(self, raw, expected):
        assert _parse_size(raw) == expected

    @pytest.mark.parametrize("raw,expected", [
        ("3600", 3600.0),
        ("30m", 1800.0),
        ("12h", 12 * 3600.0),
        ("7d", 7 * 86400.0),
        ("45s", 45.0),
        (None, None),
    ])
    def test_parse_age(self, raw, expected):
        assert _parse_age(raw) == expected

    def test_bad_values_exit_with_usage_hint(self):
        with pytest.raises(SystemExit, match="bad size"):
            _parse_size("lots")
        with pytest.raises(SystemExit, match="bad age"):
            _parse_age("forever")

    def test_human_bytes(self):
        assert _human_bytes(512) == "512 B"
        assert _human_bytes(2048) == "2.0 KB"
        assert _human_bytes(5 * 1024 ** 2) == "5.0 MB"


class TestLruTouchOnGet:
    def test_get_refreshes_mtime(self, cache):
        (key,) = _fill(cache, n=1)
        before = cache._path(key).stat().st_mtime
        assert cache.get(key) is not None
        assert cache._path(key).stat().st_mtime > before

    def test_miss_does_not_create_files(self, cache):
        assert cache.get("ee" * 32) is None
        assert len(cache) == 0
