"""Tests for the four FFM collection stages on synthetic workloads."""

import pytest

from repro.apps.synthetic import (
    DuplicateTransferApp,
    HiddenPrivateSyncApp,
    MisplacedSyncApp,
    QuietApp,
    ScriptedApp,
    UnnecessarySyncApp,
)
from repro.core.diogenes import DiogenesConfig
from repro.core.stage1_baseline import run_stage1
from repro.core.stage2_tracing import run_stage2, traced_function_set
from repro.core.stage3_memtrace import DedupStore, run_stage3
from repro.core.stage4_syncuse import run_stage4
from repro.core.records import SiteKey
from repro.driver.api import INTERNAL_WAIT_SYMBOL


@pytest.fixture
def config():
    return DiogenesConfig()


class TestStage1:
    def test_discovers_wait_symbol(self, config):
        data = run_stage1(UnnecessarySyncApp(iterations=3), config)
        assert data.wait_symbol == INTERNAL_WAIT_SYMBOL

    def test_finds_synchronizing_functions(self, config):
        data = run_stage1(UnnecessarySyncApp(iterations=3), config)
        assert "cudaDeviceSynchronize" in data.synchronizing_functions
        assert "cudaMemcpy" in data.synchronizing_functions  # implicit
        assert "cudaFree" not in data.synchronizing_functions  # app has none

    def test_finds_private_sync_functions(self, config):
        data = run_stage1(HiddenPrivateSyncApp(iterations=2), config)
        assert "__priv_fence" in data.synchronizing_functions

    def test_site_counts_match_iterations(self, config):
        data = run_stage1(UnnecessarySyncApp(iterations=5), config)
        ds_sites = [s for s in data.sync_sites
                    if s.api_name == "cudaDeviceSynchronize"]
        assert len(ds_sites) == 1  # one static site
        assert ds_sites[0].count == 5

    def test_baseline_is_lightweight(self, config):
        app = UnnecessarySyncApp(iterations=5)
        uninstrumented = app.uninstrumented_time()
        data = run_stage1(app, config)
        assert data.execution_time <= uninstrumented * 1.02

    def test_sync_sites_have_stacks(self, config):
        data = run_stage1(UnnecessarySyncApp(iterations=2), config)
        for site in data.sync_sites:
            assert len(site.stack) > 0


class TestStage2:
    def _run(self, app, config):
        stage1 = run_stage1(app, config)
        return stage1, run_stage2(app, stage1, config)

    def test_traced_set_includes_transfers_and_stage1(self, config):
        stage1 = run_stage1(UnnecessarySyncApp(iterations=2), config)
        traced = traced_function_set(stage1)
        assert "cudaMemcpy" in traced
        assert "cudaDeviceSynchronize" in traced
        assert "__priv_dma" in traced

    def test_events_cover_all_syncs(self, config):
        app = UnnecessarySyncApp(iterations=4)
        _, stage2 = self._run(app, config)
        syncs = stage2.sync_events()
        # 4 in-loop device syncs + 1 final sync memcpy
        assert len(syncs) == 5

    def test_sync_wait_measured(self, config):
        app = UnnecessarySyncApp(iterations=3, kernel_time=1e-3, cpu_time=1e-5)
        _, stage2 = self._run(app, config)
        ds = [e for e in stage2.sync_events()
              if e.api_name == "cudaDeviceSynchronize"]
        assert all(e.sync_wait > 0.5e-3 for e in ds)
        assert all(e.sync_wait <= e.duration for e in stage2.events)

    def test_transfer_metadata(self, config):
        app = DuplicateTransferApp(iterations=2, elements=1024)
        _, stage2 = self._run(app, config)
        transfers = stage2.transfer_events()
        assert all(t.nbytes == 1024 * 8 for t in transfers)
        directions = {t.direction for t in transfers}
        assert directions == {"h2d", "d2h"}

    def test_occurrences_number_dynamic_calls(self, config):
        app = UnnecessarySyncApp(iterations=3)
        _, stage2 = self._run(app, config)
        ds = [e for e in stage2.sync_events()
              if e.api_name == "cudaDeviceSynchronize"]
        assert [e.site.occurrence for e in ds] == [0, 1, 2]

    def test_stray_sync_detected(self, config):
        from repro.core.records import Stage1Data

        # Fabricate a stage-1 result that missed cudaDeviceSynchronize.
        bogus = Stage1Data(execution_time=1.0,
                           wait_symbol=INTERNAL_WAIT_SYMBOL,
                           synchronizing_functions=[])
        with pytest.raises(RuntimeError, match="incomplete"):
            run_stage2(UnnecessarySyncApp(iterations=1), bogus, config)

    def test_events_are_time_ordered(self, config):
        app = MisplacedSyncApp(iterations=3)
        _, stage2 = self._run(app, config)
        entries = [e.t_entry for e in stage2.events]
        assert entries == sorted(entries)


class TestStage3:
    def _run(self, app, config):
        stage1 = run_stage1(app, config)
        return run_stage3(app, stage1, config)

    def test_duplicate_transfers_flagged(self, config):
        app = DuplicateTransferApp(iterations=4, elements=1024)
        stage3 = self._run(app, config)
        h2d = [r for r in stage3.transfer_hashes if r.direction == "h2d"]
        assert len(h2d) == 4
        assert [r.duplicate for r in h2d] == [False, True, True, True]
        assert all(r.first_site == h2d[0].site for r in h2d[1:])

    def test_fresh_transfers_not_flagged(self, config):
        app = ScriptedApp([("h2d", 0), ("h2d", 0), ("h2d", 0)])
        stage3 = self._run(app, config)
        assert not any(r.duplicate for r in stage3.transfer_hashes)

    def test_unnecessary_sync_not_required(self, config):
        app = UnnecessarySyncApp(iterations=3)
        stage3 = self._run(app, config)
        ds = [r for r in stage3.sync_uses
              if r.api_name == "cudaDeviceSynchronize"]
        assert ds and not any(r.required for r in ds)

    def test_consumed_sync_is_required(self, config):
        app = UnnecessarySyncApp(iterations=2)
        stage3 = self._run(app, config)
        memcpy = [r for r in stage3.sync_uses if r.api_name == "cudaMemcpy"]
        assert len(memcpy) == 1
        assert memcpy[0].required
        assert memcpy[0].access_file == "synthetic.cpp"
        assert memcpy[0].access_line == 31

    def test_access_stack_recorded(self, config):
        app = UnnecessarySyncApp(iterations=1)
        stage3 = self._run(app, config)
        required = [r for r in stage3.sync_uses if r.required]
        assert required[0].access_stack is not None
        assert required[0].access_address != 0

    def test_quiet_app_all_syncs_required(self, config):
        stage3 = self._run(QuietApp(iterations=3), config)
        assert all(r.required for r in stage3.sync_uses)

    def test_hashing_charges_time(self, config):
        app = DuplicateTransferApp(iterations=3, elements=64 * 1024)
        baseline = app.uninstrumented_time()
        stage3 = self._run(app, config)
        assert stage3.execution_time > baseline * 1.2


class TestDedupStore:
    def test_content_policy_matches_across_destinations(self):
        store = DedupStore(policy="content")
        a = SiteKey((1,), 0)
        assert store.check("deadbeef", 100, a) is None
        assert store.check("deadbeef", 999, SiteKey((2,), 0)) == a

    def test_content_dst_policy_requires_same_destination(self):
        store = DedupStore(policy="content+dst")
        a = SiteKey((1,), 0)
        assert store.check("deadbeef", 100, a) is None
        assert store.check("deadbeef", 999, SiteKey((2,), 0)) is None
        assert store.check("deadbeef", 100, SiteKey((3,), 0)) == a

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            DedupStore(policy="fuzzy")


class TestStage4:
    def _run(self, app, config):
        stage1 = run_stage1(app, config)
        stage3 = run_stage3(app, stage1, config)
        return stage3, run_stage4(app, stage1, stage3, config)

    def test_misplaced_sync_delay_measured(self, config):
        app = MisplacedSyncApp(iterations=3, independent_cpu_time=400e-6)
        _, stage4 = self._run(app, config)
        assert len(stage4.first_uses) >= 3
        for record in stage4.first_uses:
            assert record.first_use_delay == pytest.approx(400e-6, rel=0.1)

    def test_prompt_use_has_small_delay(self, config):
        app = QuietApp(iterations=3)
        _, stage4 = self._run(app, config)
        for record in stage4.first_uses:
            assert record.first_use_delay < 20e-6

    def test_unnecessary_syncs_produce_no_first_use(self, config):
        app = UnnecessarySyncApp(iterations=3)
        stage3, stage4 = self._run(app, config)
        required_sites = {r.site for r in stage3.sync_uses if r.required}
        assert {r.site for r in stage4.first_uses} <= required_sites
