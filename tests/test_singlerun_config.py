"""Tests for single-run staged collection and Diogenes config plumbing."""

import pytest

from repro.apps.synthetic import UnnecessarySyncApp
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.singlerun import run_single_run_collection


class TestSingleRunCollection:
    def test_threshold_zero_captures_everything(self):
        result = run_single_run_collection(
            UnnecessarySyncApp(iterations=6), escalation_threshold=0)
        assert result.coverage == 1.0
        assert result.missed_operations == 0
        # 6 loop syncs + the final memcpy sync
        assert result.observed_operations == 7

    def test_threshold_skips_early_occurrences(self):
        result = run_single_run_collection(
            UnnecessarySyncApp(iterations=6), escalation_threshold=2)
        # Two loop-sync occurrences lost + the one-shot memcpy site lost.
        assert result.missed_operations == 3
        assert result.observed_operations == 7
        assert result.coverage == pytest.approx(4 / 7)

    def test_one_shot_sites_never_graduate(self):
        result = run_single_run_collection(
            UnnecessarySyncApp(iterations=1), escalation_threshold=1)
        # Both sites occur once: nothing is ever traced in detail.
        assert result.coverage == 0.0
        assert result.stage2.events == []

    def test_graduated_site_count(self):
        result = run_single_run_collection(
            UnnecessarySyncApp(iterations=6), escalation_threshold=2)
        assert result.graduated_sites == 1  # only the loop site repeats

    def test_events_carry_wait_durations(self):
        result = run_single_run_collection(
            UnnecessarySyncApp(iterations=5, kernel_time=1e-3,
                               cpu_time=1e-5),
            escalation_threshold=1)
        assert result.stage2.events
        assert all(e.sync_wait > 0.5e-3 for e in result.stage2.events)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            run_single_run_collection(UnnecessarySyncApp(iterations=1),
                                      escalation_threshold=-1)

    def test_empty_run_coverage_is_full(self):
        from repro.apps.base import Workload

        class NoSyncApp(Workload):
            name = "nosync"

            def run(self, ctx):
                ctx.cpu_work(1e-4)

        result = run_single_run_collection(NoSyncApp())
        assert result.coverage == 1.0


class TestDiogenesConfigPlumbing:
    def test_unsplit_stage3_single_run(self):
        config = DiogenesConfig(split_sync_transfer_runs=False)
        report = Diogenes(UnnecessarySyncApp(iterations=3), config).run()
        assert "stage3_hashing" not in report.overhead.stage_times
        assert "stage3_memtrace" in report.overhead.stage_times
        # Analysis output is unaffected by the run split.
        split_report = Diogenes(UnnecessarySyncApp(iterations=3)).run()
        assert len(report.analysis.problems) == \
            len(split_report.analysis.problems)

    def test_split_mode_has_five_collection_runs(self):
        report = Diogenes(UnnecessarySyncApp(iterations=3)).run()
        assert len(report.overhead.stage_times) == 5

    def test_dedup_policy_flows_to_stage3(self):
        from repro.apps.base import Workload
        import numpy as np

        class CrossDestinationApp(Workload):
            """Same content uploaded to two different device buffers."""

            name = "cross-dst"

            def run(self, ctx):
                rt = ctx.cudart
                with ctx.frame("main", "x.cpp", 5):
                    src = ctx.host_array(1024)
                    src.write(np.ones(1024))
                    a = rt.cudaMalloc(8192)
                    b = rt.cudaMalloc(8192)
                    with ctx.frame("main", "x.cpp", 10):
                        rt.cudaMemcpy(a, src)
                    with ctx.frame("main", "x.cpp", 12):
                        rt.cudaMemcpy(b, src)

        content = Diogenes(CrossDestinationApp(),
                           DiogenesConfig(dedup_policy="content")).run()
        strict = Diogenes(CrossDestinationApp(),
                          DiogenesConfig(dedup_policy="content+dst")).run()
        content_dups = [r for r in content.stage3.transfer_hashes
                        if r.duplicate]
        strict_dups = [r for r in strict.stage3.transfer_hashes
                       if r.duplicate]
        assert len(content_dups) == 1   # paper semantics: content match
        assert strict_dups == []        # different destinations

    def test_probe_overheads_slow_collection(self):
        cheap = DiogenesConfig(tracing_probe_overhead=0.0,
                               memtrace_probe_overhead=0.0,
                               syncuse_probe_overhead=0.0,
                               loadstore_overhead=0.0,
                               hash_bandwidth=1e15)
        expensive = DiogenesConfig(tracing_probe_overhead=20e-6,
                                   memtrace_probe_overhead=20e-6,
                                   syncuse_probe_overhead=20e-6)
        cheap_report = Diogenes(UnnecessarySyncApp(iterations=5), cheap).run()
        costly_report = Diogenes(UnnecessarySyncApp(iterations=5),
                                 expensive).run()
        assert costly_report.overhead.total_collection_time > \
            cheap_report.overhead.total_collection_time

    def test_invalid_fix_of_sequence_min_length(self):
        config = DiogenesConfig(sequence_min_length=1000)
        report = Diogenes(UnnecessarySyncApp(iterations=5), config).run()
        assert report.sequences == []
