"""Determinism suite for the parallel executor and result cache.

The hard requirement that keeps ``repro.exec`` honest (and the reason
this file exists): the report JSON from a ``--jobs 4`` run must be
**byte-identical** to the serial in-process path, and a warm-cache
re-run must produce the same bytes again while *skipping* stage
execution — verified through the observability counters, never
inferred from wall time.

Apps run at test scale (small constructor parameters) so the whole
file stays in CI-friendly territory; the byte-identity property is
scale-independent.
"""

from __future__ import annotations

import json

import pytest

import repro.obs as obs
from repro.apps.base import registry
from repro.core.cli import _load_workloads
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.jsonio import dumps_report
from repro.exec import ResultCache, StageExecutor, WorkloadSpec
from repro.exec.fingerprint import config_from_json, config_to_json

_load_workloads()

#: The four example apps at test scale.  Keys are registry names;
#: values are constructor parameters shipped to worker processes.
TEST_SCALE_APPS: dict[str, dict] = {
    "synthetic-unnecessary-sync": {"iterations": 4},
    "rodinia-gaussian": {"n": 24},
    "cumf-als": {"iterations": 3, "users": 120, "items": 80},
    "cuibm": {"steps": 2, "cg_iters": 4},
}


def _app(name: str):
    return registry.create(name, **TEST_SCALE_APPS[name])


def _serial_json(name: str) -> str:
    return dumps_report(Diogenes(_app(name)).run())


def _parallel_json(name: str, jobs: int = 4, **executor_kwargs) -> str:
    with StageExecutor(jobs=jobs, **executor_kwargs) as executor:
        return dumps_report(Diogenes(_app(name), executor=executor).run())


@pytest.fixture(autouse=True)
def _observability_off():
    obs.disable()
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Serial vs --jobs 4
# ----------------------------------------------------------------------
class TestParallelByteIdentity:
    @pytest.mark.parametrize("name", sorted(TEST_SCALE_APPS))
    def test_jobs4_report_is_byte_identical_to_serial(self, name):
        serial = _serial_json(name)
        parallel = _parallel_json(name, jobs=4)
        assert serial == parallel, (
            f"{name}: report from --jobs 4 differs from the serial run"
        )

    def test_inline_executor_matches_serial(self):
        # jobs=1 exercises the same job functions without a pool.
        name = "synthetic-unnecessary-sync"
        assert _serial_json(name) == _parallel_json(name, jobs=1,
                                                    cache_dir=None)

    def test_unsplit_stage3_mode_is_also_deterministic(self):
        config = DiogenesConfig(split_sync_transfer_runs=False)
        serial = dumps_report(
            Diogenes(_app("synthetic-unnecessary-sync"), config).run())
        with StageExecutor(jobs=4) as executor:
            parallel = dumps_report(
                Diogenes(_app("synthetic-unnecessary-sync"), config,
                         executor=executor).run())
        with StageExecutor(jobs=1) as executor:
            inline = dumps_report(
                Diogenes(_app("synthetic-unnecessary-sync"), config,
                         executor=executor).run())
        assert serial == parallel == inline

    def test_hand_built_workload_is_rejected_loudly(self):
        from repro.apps.synthetic import QuietApp

        with StageExecutor(jobs=1) as executor:
            with pytest.raises(ValueError, match="registry"):
                Diogenes(QuietApp(), executor=executor).run()


# ----------------------------------------------------------------------
# Warm cache
# ----------------------------------------------------------------------
class TestWarmCache:
    @pytest.mark.parametrize("name", ["synthetic-unnecessary-sync", "cuibm"])
    def test_warm_rerun_same_bytes_and_skips_execution(self, name, tmp_path):
        cold = _parallel_json(name, jobs=2, cache_dir=tmp_path)
        assert len(ResultCache(tmp_path)) == 5  # one entry per stage run

        with obs.enabled() as session:
            warm = _parallel_json(name, jobs=2, cache_dir=tmp_path)
        hits = sum(c.value
                   for c in session.metrics.series("exec.cache_hits"))
        misses = sum(c.value
                     for c in session.metrics.series("exec.cache_misses"))
        assert warm == cold
        assert hits == 5, "every stage run must be served from the cache"
        assert misses == 0, "a warm cache must not re-execute any stage"

    def test_cache_hits_are_visible_in_spans(self, tmp_path):
        _parallel_json("synthetic-unnecessary-sync", jobs=1,
                       cache_dir=tmp_path)
        with obs.enabled() as session:
            _parallel_json("synthetic-unnecessary-sync", jobs=1,
                           cache_dir=tmp_path)
        job_spans = session.tracer.find("exec.job")
        assert job_spans, "each stage job must emit an exec.job span"
        assert all(sp.attrs["cache_hit"] for sp in job_spans)

    def test_no_cache_flag_re_executes(self, tmp_path):
        _parallel_json("synthetic-unnecessary-sync", jobs=1,
                       cache_dir=tmp_path)
        with obs.enabled() as session:
            with StageExecutor(jobs=1, cache_dir=tmp_path,
                               use_cache=False) as executor:
                dumps_report(Diogenes(_app("synthetic-unnecessary-sync"),
                                      executor=executor).run())
        assert not session.metrics.series("exec.cache_hits")
        executed = sum(c.value
                       for c in session.metrics.series("exec.jobs_executed"))
        assert executed == 5

    def test_config_change_invalidates(self, tmp_path):
        _parallel_json("synthetic-unnecessary-sync", jobs=1,
                       cache_dir=tmp_path)
        config = DiogenesConfig(tracing_probe_overhead=9e-6)
        with obs.enabled() as session:
            with StageExecutor(jobs=1, cache_dir=tmp_path) as executor:
                Diogenes(_app("synthetic-unnecessary-sync"), config,
                         executor=executor).run()
        assert not session.metrics.series("exec.cache_hits")

    def test_param_change_invalidates(self, tmp_path):
        _parallel_json("synthetic-unnecessary-sync", jobs=1,
                       cache_dir=tmp_path)
        with obs.enabled() as session:
            with StageExecutor(jobs=1, cache_dir=tmp_path) as executor:
                Diogenes(registry.create("synthetic-unnecessary-sync",
                                         iterations=5),
                         executor=executor).run()
        assert not session.metrics.series("exec.cache_hits")

    def test_corrupt_cache_entry_degrades_to_miss(self, tmp_path):
        _parallel_json("synthetic-unnecessary-sync", jobs=1,
                       cache_dir=tmp_path)
        for path in tmp_path.glob("*/*.json"):
            path.write_text("{not json")
        warm = _parallel_json("synthetic-unnecessary-sync", jobs=1,
                              cache_dir=tmp_path)
        assert json.loads(warm)["workload"]


# ----------------------------------------------------------------------
# Batch fan-out
# ----------------------------------------------------------------------
class TestBatchDeterminism:
    def test_batch_matches_per_app_serial_runs(self):
        specs = [WorkloadSpec.from_params(name, params)
                 for name, params in sorted(TEST_SCALE_APPS.items())]
        config = DiogenesConfig()
        from repro.core.diogenes import report_from_stage_results

        with StageExecutor(jobs=4) as executor:
            results = executor.run_workloads(specs, config)
        for spec in specs:
            batch_json = dumps_report(report_from_stage_results(
                getattr(registry.create(spec.name, **spec.params_dict()),
                        "name"),
                results[spec], config))
            assert batch_json == _serial_json(spec.name), spec.name

    def test_merge_is_input_ordered_not_completion_ordered(self):
        # Reversing the submission order must not change any report.
        specs = [WorkloadSpec.from_params(name, params)
                 for name, params in sorted(TEST_SCALE_APPS.items())]
        config = DiogenesConfig()
        with StageExecutor(jobs=4) as executor:
            forward = executor.run_workloads(specs, config)
        with StageExecutor(jobs=4) as executor:
            backward = executor.run_workloads(list(reversed(specs)), config)
        for spec in specs:
            assert forward[spec] == backward[spec]


# ----------------------------------------------------------------------
# Config round-trip (what crosses the process boundary)
# ----------------------------------------------------------------------
class TestConfigRoundTrip:
    def test_default_config_round_trips(self):
        config = DiogenesConfig()
        assert config_from_json(config_to_json(config)) == config

    def test_custom_config_round_trips(self):
        from repro.core.benefit import BenefitConfig
        from repro.sim.costs import CostParameters
        from repro.sim.machine import MachineConfig

        config = DiogenesConfig(
            machine_config=MachineConfig(
                cost_params=CostParameters(h2d_bandwidth=1e9),
                compute_engines=2),
            dedup_policy="content+dst",
            split_sync_transfer_runs=False,
            benefit=BenefitConfig(cap_misplaced_at_wait=False),
        )
        assert config_from_json(config_to_json(config)) == config


# ----------------------------------------------------------------------
# Guard rails
# ----------------------------------------------------------------------
class TestExecutorGuardRails:
    def test_zero_jobs_is_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            StageExecutor(jobs=0)

    def test_unknown_stage_is_rejected(self):
        from repro.exec.jobs import StageJob, execute_job

        spec = WorkloadSpec.from_params("synthetic-unnecessary-sync",
                                        {"iterations": 2})
        job = StageJob(workload=spec, stage="stage9",
                       config=config_to_json(DiogenesConfig()))
        with pytest.raises(ValueError, match="unknown stage"):
            execute_job(job)

    def test_cache_rejects_foreign_schema_and_shape(self, tmp_path):
        from repro.exec.cache import ResultCache

        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, "stage1", "w", {"x": 1})
        (entry,) = tmp_path.glob("*/*.json")
        assert cache.get("ab" * 32) == {"x": 1}
        # A payload from a different cache schema must read as a miss.
        entry.write_text(json.dumps({"schema": -1, "data": {"x": 1}}))
        assert cache.get("ab" * 32) is None
        # So must an entry that is not even an object.
        entry.write_text(json.dumps([1, 2, 3]))
        assert cache.get("ab" * 32) is None

    def test_cache_len_without_directory_is_zero(self, tmp_path):
        from repro.exec.cache import ResultCache

        assert len(ResultCache(tmp_path / "never-created")) == 0
