"""Tests for the execution graph and its construction from traces."""

import pytest

from repro.core.graph import (
    CpuNode,
    ExecutionGraph,
    NodeType,
    ProblemKind,
)
from repro.core.graph_builder import Classification, build_graph
from repro.core.records import SiteKey, Stage2Data, TraceEvent
from repro.instr.stacks import Frame, StackTrace


def trace_event(seq, t_entry, t_exit, *, api="cudaDeviceSynchronize",
                sync_wait=0.0, is_sync=False, is_transfer=False,
                nbytes=0, direction="", line=None):
    line = 100 + seq if line is None else line
    stack = StackTrace((Frame("main", "t.cpp", line),))
    return TraceEvent(
        seq=seq, api_name=api, stack=stack,
        site=SiteKey(stack.address_key(), 0),
        t_entry=t_entry, t_exit=t_exit, sync_wait=sync_wait,
        is_sync=is_sync, is_transfer=is_transfer, nbytes=nbytes,
        direction=direction,
    )


class TestExecutionGraph:
    def _graph(self):
        nodes = [
            CpuNode(NodeType.CWORK, 0.0, 1.0),
            CpuNode(NodeType.CLAUNCH, 1.0, 0.1),
            CpuNode(NodeType.CWAIT, 1.1, 2.0),
            CpuNode(NodeType.CWORK, 3.1, 0.5),
            CpuNode(NodeType.CWAIT, 3.6, 1.0),
        ]
        return ExecutionGraph(nodes, execution_time=4.6)

    def test_exit_node_appended(self):
        g = self._graph()
        assert g.nodes[-1].ntype is NodeType.EXIT
        assert len(g) == 6

    def test_indices_assigned(self):
        g = self._graph()
        assert [n.index for n in g.nodes] == list(range(6))

    def test_next_sync_index(self):
        g = self._graph()
        assert g.next_sync_index(0) == 2
        assert g.next_sync_index(2) == 4
        assert g.next_sync_index(4) == 5  # the Exit node

    def test_nodes_between_filters_types(self):
        g = self._graph()
        between = g.nodes_between(2, 4)
        assert [n.ntype for n in between] == [NodeType.CWORK]

    def test_problematic_nodes_in_order(self):
        g = self._graph()
        g.nodes[2].problem = ProblemKind.UNNECESSARY_SYNC
        g.nodes[4].problem = ProblemKind.MISPLACED_SYNC
        assert [n.index for n in g.problematic_nodes()] == [2, 4]

    def test_validate_accepts_well_formed(self):
        self._graph().validate()

    def test_validate_rejects_negative_duration(self):
        g = self._graph()
        g.nodes[0].duration = -1.0
        with pytest.raises(ValueError):
            g.validate()

    def test_validate_rejects_time_travel(self):
        g = self._graph()
        g.nodes[3].stime = 0.0
        with pytest.raises(ValueError):
            g.validate()


class TestBuildGraph:
    def test_gaps_become_cwork(self):
        stage2 = Stage2Data(execution_time=3.0, events=[
            trace_event(0, 1.0, 1.5, is_sync=True, sync_wait=0.4),
        ])
        g = build_graph(stage2)
        types = [n.ntype for n in g.nodes]
        # leading gap, call-overhead sliver, wait, trailing gap, exit
        assert types == [NodeType.CWORK, NodeType.CWORK, NodeType.CWAIT,
                         NodeType.CWORK, NodeType.EXIT]
        assert g.nodes[0].duration == pytest.approx(1.0)
        assert g.nodes[2].duration == pytest.approx(0.4)
        assert g.nodes[3].duration == pytest.approx(1.5)

    def test_sync_transfer_splits_into_launch_and_wait(self):
        stage2 = Stage2Data(execution_time=1.0, events=[
            trace_event(0, 0.0, 0.5, api="cudaMemcpy", sync_wait=0.3,
                        is_sync=True, is_transfer=True, nbytes=64,
                        direction="h2d"),
        ])
        g = build_graph(stage2)
        launch = g.nodes[0]
        wait = g.nodes[1]
        assert launch.ntype is NodeType.CLAUNCH
        assert launch.duration == pytest.approx(0.2)
        assert wait.ntype is NodeType.CWAIT
        assert wait.duration == pytest.approx(0.3)

    def test_pure_transfer_is_single_claunch(self):
        stage2 = Stage2Data(execution_time=1.0, events=[
            trace_event(0, 0.0, 0.2, api="cudaMemcpyAsync",
                        is_transfer=True, nbytes=64, direction="d2h"),
        ])
        g = build_graph(stage2)
        assert g.nodes[0].ntype is NodeType.CLAUNCH
        assert g.nodes[0].duration == pytest.approx(0.2)

    def test_traced_non_sync_non_transfer_is_cwork(self):
        stage2 = Stage2Data(execution_time=1.0, events=[
            trace_event(0, 0.0, 0.2, api="cudaMemset"),
        ])
        g = build_graph(stage2)
        assert g.nodes[0].ntype is NodeType.CWORK

    def test_problem_annotations_applied(self):
        ev = trace_event(0, 0.0, 0.5, api="cudaMemcpy", sync_wait=0.3,
                         is_sync=True, is_transfer=True)
        verdict = Classification(
            sync_problem=ProblemKind.UNNECESSARY_SYNC,
            transfer_problem=ProblemKind.UNNECESSARY_TRANSFER,
        )
        g = build_graph(Stage2Data(1.0, [ev]), {ev.site: verdict})
        assert g.nodes[0].problem is ProblemKind.UNNECESSARY_TRANSFER
        assert g.nodes[1].problem is ProblemKind.UNNECESSARY_SYNC

    def test_misplaced_annotation_carries_first_use(self):
        ev = trace_event(0, 0.0, 0.5, sync_wait=0.3, is_sync=True)
        verdict = Classification(sync_problem=ProblemKind.MISPLACED_SYNC,
                                 first_use_time=0.123)
        g = build_graph(Stage2Data(1.0, [ev]), {ev.site: verdict})
        wait = next(n for n in g.nodes if n.ntype is NodeType.CWAIT)
        assert wait.first_use_time == 0.123

    def test_events_sorted_by_seq(self):
        events = [
            trace_event(1, 2.0, 2.5, is_sync=True, sync_wait=0.5),
            trace_event(0, 0.0, 1.0, is_sync=True, sync_wait=1.0),
        ]
        g = build_graph(Stage2Data(3.0, events))
        g.validate()

    def test_empty_trace_yields_single_work_plus_exit(self):
        g = build_graph(Stage2Data(execution_time=2.0, events=[]))
        assert [n.ntype for n in g.nodes] == [NodeType.CWORK, NodeType.EXIT]
        assert g.nodes[0].duration == 2.0
