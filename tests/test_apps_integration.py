"""Integration tests: the four evaluation applications end to end.

Each application must (a) compute correct results, (b) exhibit exactly
the problem patterns the paper reports, and (c) get faster when the
paper's fix is applied — by an amount in the neighbourhood of
Diogenes's estimate (Table 1's estimated-vs-actual comparison).
"""

import numpy as np
import pytest

from repro.apps.amg import Amg
from repro.apps.cuibm import CuIbm
from repro.apps.cumf_als import CumfAls
from repro.apps.rodinia_gaussian import RodiniaGaussian
from repro.core.diogenes import Diogenes
from repro.core.graph import ProblemKind
from repro.core.grouping import expand_fold
from repro.core.sequences import subsequence


@pytest.fixture(scope="module")
def als_report():
    return Diogenes(CumfAls(iterations=4)).run()


@pytest.fixture(scope="module")
def cuibm_report():
    return Diogenes(CuIbm(steps=3, cg_iters=8)).run()


@pytest.fixture(scope="module")
def amg_report():
    return Diogenes(Amg(cycles=8)).run()


@pytest.fixture(scope="module")
def gaussian_report():
    return Diogenes(RodiniaGaussian(n=48)).run()


class TestCumfAls:
    def test_training_converges(self):
        app = CumfAls(iterations=6)
        app.execute()
        assert app.rmse_history[-1] < app.rmse_history[0]

    def test_sequence_has_23_entries(self, als_report):
        seq = als_report.sequences[0]
        assert seq.length == 23
        assert seq.sync_issue_count == 23
        assert seq.transfer_issue_count == 5

    def test_figure6_visible_entries(self, als_report):
        listing = als_report.sequences[0].listing()
        assert listing[0] == "1. cudaMemcpy in als.cpp at line 738"
        assert listing[1] == "2. cudaMemcpy in als.cpp at line 739"
        assert listing[2] == "3. cudaFree in als.cpp at line 760"
        assert listing[9] == "10. cudaFree in als.cpp at line 856"
        assert listing[10] == "11. cudaDeviceSynchronize in als.cpp at line 877"
        assert listing[22] == "23. cudaFree in als.cpp at line 987"

    def test_sequence_spans_two_files(self, als_report):
        files = {e.file for e in als_report.sequences[0].entries}
        assert files == {"als.cpp", "cg.cu"}

    def test_duplicate_uploads_detected(self, als_report):
        dups = [r for r in als_report.stage3.transfer_hashes if r.duplicate]
        assert len(dups) >= 5 * 3  # 5 per iteration after the first

    def test_devicesync_benefit_tiny_despite_huge_wait(self, als_report):
        a = als_report.analysis
        by_api = a.by_api()
        # The Table 2 contrast: cudaFree dominates recoverable time,
        # cudaDeviceSynchronize is negligible.
        assert by_api["cudaFree"] > 20 * by_api["cudaDeviceSynchronize"]

    def test_subsequence_close_to_full_estimate(self, als_report):
        seq = als_report.sequences[0]
        sub = subsequence(als_report.analysis, seq, 10, 23)
        assert 0.5 < sub.est_benefit / seq.est_benefit <= 1.0

    def test_fix_matches_estimate(self, als_report):
        kw = dict(iterations=4)
        t0 = CumfAls(**kw).uninstrumented_time()
        t1 = CumfAls(fix="subsequence", **kw).uninstrumented_time()
        actual = t0 - t1
        sub = subsequence(als_report.analysis, als_report.sequences[0],
                          10, 23)
        assert actual > 0
        assert 0.5 <= sub.est_benefit / actual <= 1.5

    def test_full_fix_is_fastest(self):
        kw = dict(iterations=3)
        t_none = CumfAls(**kw).uninstrumented_time()
        t_sub = CumfAls(fix="subsequence", **kw).uninstrumented_time()
        t_full = CumfAls(fix="full", **kw).uninstrumented_time()
        assert t_full < t_sub < t_none

    def test_fixed_variant_still_converges(self):
        app = CumfAls(iterations=6, fix="full")
        app.execute()
        assert app.rmse_history[-1] < app.rmse_history[0]

    def test_invalid_fix_level_rejected(self):
        with pytest.raises(ValueError):
            CumfAls(fix="everything")


class TestCuIbm:
    def test_pressure_solve_converges(self):
        app = CuIbm(steps=4, cg_iters=8)
        app.execute()
        assert max(app.residual_history) < 1.0

    def test_cudafree_fold_dominates(self, cuibm_report):
        folds = cuibm_report.api_folds
        assert "cudaFree" in folds[0].label
        pct = cuibm_report.analysis.percent(folds[0].total_benefit)
        assert 12 < pct < 35  # paper: 22.52%

    def test_fold_expansion_names_template_functions(self, cuibm_report):
        fold = next(g for g in cuibm_report.api_folds
                    if "cudaFree" in g.label)
        rows = expand_fold(fold)
        assert "contiguous_storage" in rows[0].base_name  # biggest row
        names = " ".join(r.base_name for r in rows)
        assert "minmax_element" in names or "thrust::pair" in names
        assert "multiply" in names

    def test_hidden_async_memcpy_syncs_found(self, cuibm_report):
        by_api = cuibm_report.analysis.by_api()
        assert by_api.get("cudaMemcpyAsync", 0.0) > 0.0

    def test_memory_manager_fix_beats_estimate(self, cuibm_report):
        # The paper's signature result: the fix removes millions of
        # malloc/free calls too, so actual benefit exceeds the
        # contiguous_storage estimate (330s actual vs 202s estimated).
        kw = dict(steps=3, cg_iters=8)
        t0 = CuIbm(**kw).uninstrumented_time()
        t1 = CuIbm(fixed=True, **kw).uninstrumented_time()
        actual = t0 - t1
        fold = next(g for g in cuibm_report.api_folds
                    if "cudaFree" in g.label)
        storage_est = expand_fold(fold)[0].total_benefit
        assert actual > storage_est

    def test_fixed_variant_numerics_unchanged(self):
        a = CuIbm(steps=3, cg_iters=6)
        b = CuIbm(steps=3, cg_iters=6, fixed=True)
        a.execute()
        b.execute()
        for fa, fb in zip(a.final_fields, b.final_fields):
            assert np.allclose(fa, fb)


class TestAmg:
    def test_vcycles_reduce_residual(self):
        app = Amg(cycles=10)
        app.execute()
        assert app.residual_history[-1] < app.residual_history[0] * 0.1

    def test_memset_fold_is_top_problem(self, amg_report):
        assert "cudaMemset" in amg_report.api_folds[0].label

    def test_memset_problems_are_unnecessary_syncs(self, amg_report):
        fold = amg_report.api_folds[0]
        assert fold.problem_kinds() == {ProblemKind.UNNECESSARY_SYNC}

    def test_stream_sync_found_misplaced(self, amg_report):
        misplaced = [p for p in amg_report.analysis.problems
                     if p.kind is ProblemKind.MISPLACED_SYNC]
        assert misplaced
        assert all(p.api_name == "cudaStreamSynchronize" for p in misplaced)

    def test_managed_allocs_not_flagged(self, amg_report):
        apis = {p.api_name for p in amg_report.analysis.problems}
        assert "cudaMallocManaged" not in apis

    def test_memset_fix_matches_estimate(self, amg_report):
        kw = dict(cycles=8)
        t0 = Amg(**kw).uninstrumented_time()
        t1 = Amg(fixed=True, **kw).uninstrumented_time()
        actual = t0 - t1
        est = next(g.total_benefit for g in amg_report.api_folds
                   if "cudaMemset" in g.label)
        assert actual > 0
        assert 0.4 <= actual / est <= 1.6

    def test_fixed_variant_same_solution(self):
        a = Amg(cycles=6)
        b = Amg(cycles=6, fixed=True)
        a.execute()
        b.execute()
        assert np.allclose(a.solution, b.solution)


class TestRodiniaGaussian:
    def test_solves_the_system(self):
        app = RodiniaGaussian(n=48)
        app.execute()
        assert app.residual < 1e-9

    def test_threadsync_is_top_problem(self, gaussian_report):
        assert "cudaThreadSynchronize" in gaussian_report.api_folds[0].label

    def test_profiler_vs_diogenes_contrast(self, gaussian_report):
        from repro.profilers import NvprofProfiler

        nv = NvprofProfiler(record_limit=None).profile(RodiniaGaussian(n=48))
        nv_pct = nv.entry("cudaThreadSynchronize").percent
        dio_pct = gaussian_report.analysis.percent(
            gaussian_report.api_folds[0].total_benefit)
        # NVProf: ~95% consumed.  Diogenes: single-digit recoverable.
        assert nv_pct > 70.0
        assert dio_pct < 10.0
        assert nv_pct > 10 * dio_pct

    def test_fix_recovers_small_benefit(self, gaussian_report):
        kw = dict(n=48)
        t0 = RodiniaGaussian(**kw).uninstrumented_time()
        t1 = RodiniaGaussian(fixed=True, **kw).uninstrumented_time()
        actual_pct = 100 * (t0 - t1) / t0
        assert 0.0 < actual_pct < 10.0

    def test_fixed_variant_same_solution(self):
        a = RodiniaGaussian(n=32)
        b = RodiniaGaussian(n=32, fixed=True)
        a.execute()
        b.execute()
        assert np.allclose(a.solution, b.solution)


class TestDeterminism:
    def test_two_sessions_produce_identical_json(self):
        from repro.core.jsonio import dumps_report

        a = Diogenes(CumfAls(iterations=2)).run()
        b = Diogenes(CumfAls(iterations=2)).run()
        assert dumps_report(a) == dumps_report(b)

    def test_uninstrumented_time_is_stable(self):
        times = {CuIbm(steps=2, cg_iters=4).uninstrumented_time()
                 for _ in range(3)}
        assert len(times) == 1


class TestPrivateApiEndToEnd:
    """The vendor-library workload through the whole pipeline: hidden
    fences found, attributed, and estimated — the headline honesty
    claim."""

    @pytest.fixture(scope="class")
    def report(self):
        from repro.apps.synthetic import HiddenPrivateSyncApp

        return Diogenes(HiddenPrivateSyncApp(iterations=6)).run()

    def test_private_fences_flagged(self, report):
        fences = [p for p in report.analysis.problems
                  if p.api_name == "__priv_fence"]
        assert len(fences) == 6
        assert all(p.kind is ProblemKind.UNNECESSARY_SYNC for p in fences)

    def test_benefit_estimated_for_hidden_syncs(self, report):
        assert report.total_benefit > 0

    def test_nvprof_cannot_see_what_diogenes_found(self, report):
        from repro.apps.synthetic import HiddenPrivateSyncApp
        from repro.profilers import NvprofProfiler

        nv = NvprofProfiler(record_limit=None).profile(
            HiddenPrivateSyncApp(iterations=6))
        nv_names = {e.name for e in nv.entries}
        dio_names = {p.api_name for p in report.analysis.problems}
        hidden = dio_names - nv_names
        assert "__priv_fence" in hidden


class TestMultiStreamPipelineControl:
    """Correctly written pipelines come back clean — the advanced
    negative controls."""

    def test_no_findings_on_clean_pipeline(self):
        import numpy as np

        from repro.apps.base import Workload

        class PipelinedApp(Workload):
            """Overlapped host work, pinned staging, one stream-ordered
            sync right before each consumption: nothing to fix."""

            name = "pipelined"

            def run(self, ctx):
                rt = ctx.cudart
                with ctx.frame("main", "pipe.cu", 5):
                    dev = rt.cudaMalloc(8 * 4096)
                    staging = rt.cudaMallocHost(4096)
                    total = 0.0
                    for i in range(6):
                        with ctx.frame("stage", "pipe.cu", 10):
                            rt.cudaLaunchKernel(
                                "produce", 400e-6,
                                writes=[(dev, np.full(4096, float(i)))])
                            # Stream ordering covers the kernel->copy
                            # dependency; no host block needed here.
                            rt.cudaMemcpyAsync(staging, dev)
                        ctx.cpu_work(350e-6, "overlapped host work")
                        with ctx.frame("stage", "pipe.cu", 16):
                            rt.cudaStreamSynchronize(0)
                        with ctx.frame("stage", "pipe.cu", 20):
                            total += float(staging.read().sum())
                    self.total = total

        report = Diogenes(PipelinedApp()).run()
        assert report.total_benefit < 5e-6
        assert report.warnings == []

    def test_host_blocking_event_sync_is_rightly_flagged(self):
        """The same pipeline written with a *host-blocking*
        cudaEventSynchronize guarding only a device-side ordering (what
        cudaStreamWaitEvent should do) gets flagged: no CPU access to
        protected data depends on that block."""
        import numpy as np

        from repro.apps.base import Workload

        class HostBlockingPipeline(Workload):
            name = "host-blocking-pipeline"

            def run(self, ctx):
                rt = ctx.cudart
                with ctx.frame("main", "pipe.cu", 5):
                    copy_stream = rt.cudaStreamCreate()
                    dev = rt.cudaMalloc(8 * 4096)
                    staging = rt.cudaMallocHost(4096)
                    for i in range(4):
                        with ctx.frame("stage", "pipe.cu", 10):
                            rt.cudaLaunchKernel(
                                "produce", 400e-6,
                                writes=[(dev, np.full(4096, float(i)))])
                            ev = rt.cudaEventCreate()
                            rt.cudaEventRecord(ev)
                        with ctx.frame("stage", "pipe.cu", 16):
                            rt.cudaEventSynchronize(ev)  # host block
                            rt.cudaMemcpyAsync(staging, dev,
                                               stream=copy_stream)
                            rt.cudaStreamSynchronize(copy_stream)
                        with ctx.frame("stage", "pipe.cu", 20):
                            float(staging.read().sum())

        report = Diogenes(HostBlockingPipeline()).run()
        flagged = {p.api_name for p in report.analysis.problems}
        assert "cudaEventSynchronize" in flagged
