"""Tests for the fix recommendation engine (§6 future work)."""

import pytest

from repro.apps.amg import Amg
from repro.apps.cuibm import CuIbm
from repro.apps.cumf_als import CumfAls
from repro.apps.rodinia_gaussian import RodiniaGaussian
from repro.apps.synthetic import (
    DuplicateTransferApp,
    MisplacedSyncApp,
    QuietApp,
    UnnecessarySyncApp,
)
from repro.core.autofix import (
    Confidence,
    FixStrategy,
    fixes_to_json,
    recommend_fixes,
    render_fixes,
)
from repro.core.diogenes import Diogenes


def fixes_for(app):
    report = Diogenes(app).run()
    return report, recommend_fixes(report)


class TestRules:
    def test_unnecessary_explicit_sync_gets_remove(self):
        _, recs = fixes_for(UnnecessarySyncApp(iterations=5))
        assert recs
        assert recs[0].strategy is FixStrategy.REMOVE_SYNC
        assert recs[0].confidence is Confidence.HIGH
        assert recs[0].occurrences == 5

    def test_duplicate_upload_gets_hoist_transfer(self):
        _, recs = fixes_for(DuplicateTransferApp(iterations=5))
        strategies = {r.strategy for r in recs}
        assert FixStrategy.HOIST_TRANSFER in strategies
        hoist = next(r for r in recs
                     if r.strategy is FixStrategy.HOIST_TRANSFER)
        assert "write-protect" in hoist.rationale

    def test_misplaced_sync_gets_move(self):
        _, recs = fixes_for(MisplacedSyncApp(iterations=5))
        assert recs[0].strategy is FixStrategy.MOVE_SYNC
        assert "us later" in recs[0].rationale

    def test_quiet_app_gets_nothing(self):
        report, recs = fixes_for(QuietApp(iterations=3))
        assert recs == []
        assert render_fixes(report, recs) == "No fixable problems found."


class TestOnEvaluationApps:
    def test_cuibm_recommends_pool_for_thrust_frees(self):
        _, recs = fixes_for(CuIbm(steps=2, cg_iters=6))
        top = recs[0]
        assert top.strategy is FixStrategy.HOIST_ALLOC_FREE
        assert "pool" in top.rationale
        strategies = {r.strategy for r in recs}
        assert FixStrategy.USE_PINNED in strategies  # the async memcpys

    def test_amg_recommends_host_memset(self):
        _, recs = fixes_for(Amg(cycles=8))
        memset_recs = [r for r in recs
                       if r.strategy is FixStrategy.HOST_MEMSET]
        assert memset_recs
        assert memset_recs[0].confidence is Confidence.HIGH
        move_recs = [r for r in recs if r.strategy is FixStrategy.MOVE_SYNC]
        assert move_recs  # the misplaced cudaStreamSynchronize

    def test_rodinia_recommends_removing_threadsync(self):
        _, recs = fixes_for(RodiniaGaussian(n=40))
        assert recs[0].strategy is FixStrategy.REMOVE_SYNC
        assert "cudaThreadSynchronize" in recs[0].target

    def test_cumf_mixes_hoists(self):
        _, recs = fixes_for(CumfAls(iterations=3))
        strategies = {r.strategy for r in recs}
        assert FixStrategy.HOIST_ALLOC_FREE in strategies
        assert FixStrategy.HOIST_TRANSFER in strategies

    def test_recommended_benefit_tracks_measured_fix(self):
        report, recs = fixes_for(RodiniaGaussian(n=40))
        total_rec = sum(r.est_benefit for r in recs)
        t0 = RodiniaGaussian(n=40).uninstrumented_time()
        t1 = RodiniaGaussian(n=40, fixed=True).uninstrumented_time()
        assert total_rec == pytest.approx(t0 - t1, rel=3.0)


class TestOutput:
    def test_ranked_by_benefit(self):
        _, recs = fixes_for(CumfAls(iterations=3))
        benefits = [r.est_benefit for r in recs]
        assert benefits == sorted(benefits, reverse=True)

    def test_min_benefit_filter(self):
        report, recs = fixes_for(CumfAls(iterations=3))
        filtered = recommend_fixes(report, min_benefit=recs[0].est_benefit)
        assert len(filtered) <= len(recs)
        assert all(r.est_benefit >= recs[0].est_benefit for r in filtered)

    def test_render_contains_locations_and_percent(self):
        report, recs = fixes_for(UnnecessarySyncApp(iterations=4))
        text = render_fixes(report, recs)
        assert "synthetic.cpp" in text
        assert "% of execution" in text

    def test_json_export(self):
        import json

        _, recs = fixes_for(UnnecessarySyncApp(iterations=4))
        blob = json.dumps(fixes_to_json(recs))
        parsed = json.loads(blob)
        assert parsed[0]["strategy"] == "remove_synchronization"
        assert parsed[0]["occurrences"] == 4


class TestStabilityWarnings:
    """§5.3: run-to-run behaviour changes are detected and surfaced."""

    def test_stable_app_has_no_warnings(self):
        report = Diogenes(UnnecessarySyncApp(iterations=4)).run()
        assert report.warnings == []

    def test_nondeterministic_app_is_flagged(self):
        from repro.apps.base import Workload

        class DriftingApp(Workload):
            """Violates the stability contract: each run performs one
            more synchronization than the previous one."""

            name = "drifting-app"

            def __init__(self):
                self.run_count = 0

            def run(self, ctx):
                rt = ctx.cudart
                self.run_count += 1
                with ctx.frame("main", "drift.cpp", 5):
                    for i in range(2 + self.run_count):
                        with ctx.frame("main", "drift.cpp", 10):
                            rt.cudaLaunchKernel("k", 100e-6)
                            rt.cudaDeviceSynchronize()

        report = Diogenes(DriftingApp()).run()
        assert report.warnings
        assert any("run-to-run" in w for w in report.warnings)

    def test_warnings_exported_to_json(self):
        from repro.core.jsonio import report_to_json

        report = Diogenes(UnnecessarySyncApp(iterations=3)).run()
        assert report_to_json(report)["warnings"] == []


class TestMergedRecommendations:
    def test_hoisted_transfer_subsumes_same_site_sync_removal(self):
        report, recs = fixes_for(DuplicateTransferApp(iterations=6))
        dup_site_recs = [r for r in recs
                         if "line 221" in r.target]
        # One edit per call site: the hoist carries the sync benefit too.
        assert len(dup_site_recs) == 1
        rec = dup_site_recs[0]
        assert rec.strategy is FixStrategy.HOIST_TRANSFER
        from repro.core.graph import ProblemKind

        assert ProblemKind.UNNECESSARY_SYNC in rec.kinds
        assert ProblemKind.UNNECESSARY_TRANSFER in rec.kinds
        assert rec.est_benefit == pytest.approx(report.total_benefit,
                                                rel=0.01)


class TestNegativePaths:
    """The engine must stay honest when there is nothing (good) to fix."""

    def test_problem_free_app_yields_no_recommendations(self):
        report, recs = fixes_for(QuietApp(iterations=6))
        assert report.analysis.problems == []
        assert recs == []
        assert render_fixes(report, recs) == "No fixable problems found."

    def test_measured_benefit_of_a_noop_fix_is_zero(self):
        from repro.core.autofix import measure_actual_benefit

        # "Fixing" a problem-free app changes nothing: base and "fixed"
        # variants are the same program, so the measured delta is zero.
        measured = measure_actual_benefit(QuietApp(iterations=6),
                                          QuietApp(iterations=6))
        assert measured.delta == 0.0
        assert measured.percent == 0.0

    def test_worsening_fix_reports_negative_delta(self):
        from repro.core.autofix import measure_actual_benefit

        # A "fix" that syncs *more* (the unfixed app vs the truly fixed
        # one, roles swapped) must come back negative, not clamped.
        fast = UnnecessarySyncApp(iterations=8, fixed=True)
        slow = UnnecessarySyncApp(iterations=8, fixed=False)
        measured = measure_actual_benefit(fast, slow)
        assert measured.delta < 0.0
        assert measured.percent < 0.0
        assert measured.to_json()["delta"] == pytest.approx(measured.delta)

    def test_actual_benefit_agrees_with_direct_timing(self):
        from repro.core.autofix import measure_actual_benefit

        base = DuplicateTransferApp(iterations=6)
        fixed = DuplicateTransferApp(iterations=6, fixed=True)
        measured = measure_actual_benefit(base, fixed)
        assert measured.delta > 0.0
        direct = (DuplicateTransferApp(iterations=6).uninstrumented_time()
                  - DuplicateTransferApp(iterations=6,
                                         fixed=True).uninstrumented_time())
        assert measured.delta == pytest.approx(direct)
