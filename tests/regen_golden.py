"""Regenerate the golden report fixtures under ``tests/golden/``.

Usage (from the repository root)::

    PYTHONPATH=src python tests/regen_golden.py

The script also works without PYTHONPATH set — it locates ``src``
relative to itself.  Commit the resulting JSON diffs together with the
behaviour change that motivated them; an unexplained diff is a
regression, not a fixture update.
"""

from __future__ import annotations

import pathlib
import sys

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE.parent / "src"))
sys.path.insert(0, str(_HERE.parent))

from tests.goldens import GOLDEN_APPS, GOLDEN_DIR, generate_report_json  # noqa: E402


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for stem in sorted(GOLDEN_APPS):
        path = GOLDEN_DIR / f"{stem}.json"
        text = generate_report_json(stem)
        changed = not path.exists() or path.read_text() != text
        path.write_text(text)
        print(f"{'updated' if changed else 'unchanged'}  {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
