"""Regenerate the golden report fixtures under ``tests/golden/``.

Usage (from the repository root)::

    PYTHONPATH=src python tests/regen_golden.py           # rewrite
    PYTHONPATH=src python tests/regen_golden.py --check   # verify only

The script also works without PYTHONPATH set — it locates ``src``
relative to itself.  Commit the resulting JSON diffs together with the
behaviour change that motivated them; an unexplained diff is a
regression, not a fixture update.  ``--check`` rewrites nothing and
exits 1 if any committed golden differs from what the current code
generates — CI runs it so goldens can never silently drift.
"""

from __future__ import annotations

import pathlib
import sys

_HERE = pathlib.Path(__file__).resolve().parent
sys.path.insert(0, str(_HERE.parent / "src"))
sys.path.insert(0, str(_HERE.parent))

from tests.goldens import GOLDEN_APPS, GOLDEN_DIR, generate_report_json  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    check = "--check" in args
    GOLDEN_DIR.mkdir(exist_ok=True)
    stale = []
    for stem in sorted(GOLDEN_APPS):
        path = GOLDEN_DIR / f"{stem}.json"
        text = generate_report_json(stem)
        changed = not path.exists() or path.read_text() != text
        if check:
            if changed:
                stale.append(path)
            print(f"{'STALE' if changed else 'ok'}      {path}")
        else:
            path.write_text(text)
            print(f"{'updated' if changed else 'unchanged'}  {path}")
    if stale:
        print(f"\n{len(stale)} golden(s) out of date; regenerate with "
              "`PYTHONPATH=src python tests/regen_golden.py` and commit "
              "the diff alongside the change that caused it.")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
