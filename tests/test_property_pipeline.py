"""Property-based tests over the whole pipeline using scripted workloads.

These generate random-but-valid application scripts, run the full
five-stage tool, and check invariants that must hold for *any*
application: the estimate never exceeds the baseline run time, quiet
scripts yield no findings, duplicate uploads are found iff present, and
the pipeline is deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import ScriptedApp
from repro.core.diogenes import Diogenes
from repro.core.graph import ProblemKind

_steps = st.sampled_from([
    ("work", 50e-6),
    ("work", 200e-6),
    ("launch", 100e-6),
    ("launch", 400e-6),
    ("sync",),
    ("h2d", 0),
    ("h2d_same", 0),
    ("d2h", 0),
    ("read",),
    ("free",),
])

scripts = st.lists(_steps, min_size=1, max_size=25)


class TestPipelineProperties:
    @given(scripts)
    @settings(max_examples=25, deadline=None)
    def test_estimate_bounded_by_execution_time(self, script):
        report = Diogenes(ScriptedApp(script)).run()
        assert 0.0 <= report.total_benefit <= \
            report.analysis.execution_time + 1e-9

    @given(scripts)
    @settings(max_examples=15, deadline=None)
    def test_pipeline_is_deterministic(self, script):
        a = Diogenes(ScriptedApp(script)).run()
        b = Diogenes(ScriptedApp(script)).run()
        assert a.to_json() == b.to_json()

    @given(scripts)
    @settings(max_examples=25, deadline=None)
    def test_duplicates_found_iff_repeated_content(self, script):
        report = Diogenes(ScriptedApp(script)).run()
        dup_found = any(p.kind is ProblemKind.UNNECESSARY_TRANSFER
                        for p in report.analysis.problems)
        same_count = sum(1 for s in script if s[0] == "h2d_same")
        if same_count >= 2:
            assert dup_found
        if same_count <= 1 and not any(s[0] == "d2h" for s in script):
            # d2h payloads can collide only if kernel outputs repeat;
            # with no d2h and <2 identical uploads there is nothing to
            # deduplicate (fresh uploads all differ).
            assert not dup_found

    @given(st.lists(st.sampled_from([("work", 100e-6), ("launch", 100e-6)]),
                    min_size=1, max_size=15))
    @settings(max_examples=25, deadline=None)
    def test_syncless_scripts_yield_no_sync_problems(self, script):
        report = Diogenes(ScriptedApp(script)).run()
        assert not report.analysis.sync_problems()

    @given(scripts)
    @settings(max_examples=25, deadline=None)
    def test_stage_counts_consistent(self, script):
        report = Diogenes(ScriptedApp(script)).run()
        # Every classified problem corresponds to a traced stage-2 site.
        traced_sites = {e.site for e in report.stage2.events}
        for p in report.analysis.problems:
            assert p.site in traced_sites

    @given(scripts)
    @settings(max_examples=25, deadline=None)
    def test_graph_validates_for_any_script(self, script):
        report = Diogenes(ScriptedApp(script)).run()
        report.analysis.graph.validate()

    @given(scripts)
    @settings(max_examples=20, deadline=None)
    def test_collection_overhead_at_least_runs(self, script):
        report = Diogenes(ScriptedApp(script)).run()
        # Four collection runs: total collection time is at least ~4x a
        # single (instrumented-lightly) run.
        assert report.overhead.total_collection_time >= \
            report.overhead.baseline_time * 3.5
