"""Trace-replay ingestion: converters, bundled traces, round-trips."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.apps.base import registry
from repro.apps.replay import (
    ReplayApp,
    app_timeline_events,
    bundled_traces,
    report_chrome_trace,
    timeline_from_any,
    timeline_from_chrome,
    timeline_from_cupti,
)
from repro.core.diogenes import Diogenes
from repro.fuzz import FuzzedApp


def _problem_counter(report) -> Counter:
    return Counter((p.file, p.line, p.kind.value)
                   for p in report.analysis.problems)


# ----------------------------------------------------------------------
# Bundled real-shaped traces
# ----------------------------------------------------------------------
def test_bundled_traces_present():
    assert "dl-training" in bundled_traces()
    assert "multi-stream" in bundled_traces()


def test_dl_training_trace_finds_planted_patterns():
    report = Diogenes(ReplayApp(trace="dl-training")).run()
    found = _problem_counter(report)
    # Duplicate weight re-upload: five of six iterations are dups.
    assert found[("train.cpp", 45, "unnecessary_transfer")] == 5
    # Wasteful post-backward device sync, every iteration.
    assert found[("train.cpp", 65, "unnecessary_synchronization")] == 6
    # Loss readback whose first use trails by ~210us.
    assert found[("train.cpp", 60, "misplaced_synchronization")] == 6


def test_multi_stream_trace_finds_only_the_round_sync():
    report = Diogenes(ReplayApp(trace="multi-stream")).run()
    found = _problem_counter(report)
    assert found[("pipeline.cpp", 99, "unnecessary_synchronization")] == 4
    # The per-stream quiet pattern (pinned + async + stream sync +
    # prompt read) must not be flagged.
    assert sum(found.values()) == 4


def test_replay_is_deterministic():
    a = _problem_counter(Diogenes(ReplayApp(trace="dl-training")).run())
    b = _problem_counter(Diogenes(ReplayApp(trace="dl-training")).run())
    assert a == b


def test_replay_app_is_registry_rebuildable():
    app = registry.create("replay", trace="multi-stream")
    assert app._registry_params == {"trace": "multi-stream"}
    assert app.timeline == ReplayApp(trace="multi-stream").timeline


def test_unknown_trace_name_raises():
    with pytest.raises(ValueError, match="bundled"):
        ReplayApp(trace="no-such-trace")


# ----------------------------------------------------------------------
# Chrome-trace export round-trip
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 7, 13])
def test_chrome_round_trip_reproduces_problems(seed):
    """Export a report's app timeline, re-ingest it, re-analyze: the
    same problems must re-appear at the same sites with the same
    dynamic counts."""
    base_report = Diogenes(FuzzedApp(seed=seed)).run()
    doc = report_chrome_trace(base_report)
    replay = ReplayApp.from_document(doc, label=f"seed{seed}")
    replay_report = Diogenes(replay).run()
    assert _problem_counter(replay_report) == _problem_counter(base_report)


def test_app_timeline_events_shape():
    report = Diogenes(FuzzedApp(seed=1)).run()
    events = app_timeline_events(report, pid=5)
    meta, rest = events[0], events[1:]
    assert meta["ph"] == "M" and meta["pid"] == 5
    assert rest, "stage 2 traced operations should be exported"
    for e in rest:
        assert e["ph"] == "X" and e["cat"] == "cuda" and e["pid"] == 5
        assert {"file", "line", "sync_wait", "is_sync",
                "is_transfer"} <= set(e["args"])


def test_chrome_converter_rejects_traces_without_app_lane():
    with pytest.raises(ValueError, match="diogenes run"):
        timeline_from_chrome({"traceEvents": [
            {"ph": "X", "name": "stage1", "ts": 0, "dur": 5}]})


# ----------------------------------------------------------------------
# CUPTI-activity converter
# ----------------------------------------------------------------------
def _activity(records):
    return {"schema": "diogenes-cupti-activity/1", "records": records}


def test_cupti_converter_rejects_unknown_schema():
    with pytest.raises(ValueError, match="schema"):
        timeline_from_cupti({"schema": "nvidia-cupti/99", "records": []})


def test_cupti_converter_rejects_empty_and_unknown_records():
    with pytest.raises(ValueError, match="no records"):
        timeline_from_cupti(_activity([]))
    with pytest.raises(ValueError, match="unknown activity record"):
        timeline_from_cupti(_activity([{"kind": "nvlink", "start": 0.0}]))


def test_cupti_converter_emits_gaps_as_cpu_work():
    ops = timeline_from_cupti(_activity([
        {"kind": "kernel", "name": "k", "duration": 1e-4, "start": 0.0,
         "file": "a.cpp", "line": 1},
        {"kind": "sync", "api": "cudaDeviceSynchronize", "start": 300e-6,
         "duration": 50e-6, "file": "a.cpp", "line": 2},
    ]))
    kinds = [op["op"] for op in ops]
    assert kinds == ["kernel", "work", "sync"]
    work = ops[1]["seconds"]
    assert work == pytest.approx(300e-6 - 10e-6)


def test_timeline_from_any_dispatches_on_shape():
    doc = _activity([{"kind": "kernel", "name": "k", "duration": 1e-4,
                      "start": 0.0}])
    assert timeline_from_any(doc)[0]["op"] == "kernel"
    with pytest.raises(ValueError, match="unrecognized"):
        timeline_from_any({"spans": []})


def test_cupti_duplicate_payloads_detected_as_duplicates():
    """Identical payload tags on h2d records become identical bytes."""
    records = []
    for i in range(3):
        records.append({"kind": "memcpy", "copy": "h2d",
                        "api": "cudaMemcpy", "payload": "model",
                        "buffer": "dev", "bytes": 16384,
                        "start": i * 500e-6, "duration": 10e-6,
                        "file": "dup.cpp", "line": 7})
        records.append({"kind": "kernel", "name": "use", "duration": 2e-4,
                        "start": i * 500e-6 + 50e-6,
                        "file": "dup.cpp", "line": 9,
                        "writes": [{"buffer": "out", "payload": f"o{i}",
                                    "bytes": 2048}]})
    app = ReplayApp.from_document(_activity(records), label="dup")
    found = _problem_counter(Diogenes(app).run())
    assert found[("dup.cpp", 7, "unnecessary_transfer")] == 2
