"""Property-based tests (hypothesis) for core data structures and the
expected-benefit estimator's invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benefit import (
    expected_benefit,
    expected_benefit_subset,
    naive_resource_estimate,
)
from repro.core.graph import CpuNode, ExecutionGraph, NodeType, ProblemKind
from repro.instr.loadstore import RegionSet
from repro.instr.symbols import demangle_base_name, strip_template_params

# ----------------------------------------------------------------------
# Graph/benefit strategies
# ----------------------------------------------------------------------
_node_strategy = st.tuples(
    st.sampled_from([NodeType.CWORK, NodeType.CLAUNCH, NodeType.CWAIT]),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    st.sampled_from([ProblemKind.NONE, ProblemKind.UNNECESSARY_SYNC,
                     ProblemKind.MISPLACED_SYNC,
                     ProblemKind.UNNECESSARY_TRANSFER]),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
)


def _build(node_specs):
    nodes = []
    t = 0.0
    for ntype, duration, problem, first_use in node_specs:
        # Problem kinds must be consistent with node types.
        if ntype is NodeType.CWAIT and problem is ProblemKind.UNNECESSARY_TRANSFER:
            problem = ProblemKind.UNNECESSARY_SYNC
        if ntype is NodeType.CLAUNCH and problem in (
                ProblemKind.UNNECESSARY_SYNC, ProblemKind.MISPLACED_SYNC):
            problem = ProblemKind.UNNECESSARY_TRANSFER
        if ntype is NodeType.CWORK:
            problem = ProblemKind.NONE
        nodes.append(CpuNode(ntype, t, duration, problem=problem,
                             first_use_time=first_use))
        t += duration
    return ExecutionGraph(nodes, execution_time=t)


graphs = st.lists(_node_strategy, min_size=1, max_size=40).map(_build)


class TestBenefitInvariants:
    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_benefit_is_nonnegative(self, graph):
        assert expected_benefit(graph).total >= 0.0

    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_benefit_never_exceeds_naive_estimate(self, graph):
        # The FFM estimate models interactions; it can only revise the
        # naive "all consumed time is recoverable" figure downward.
        result = expected_benefit(graph)
        assert result.total <= naive_resource_estimate(graph) + 1e-9

    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_benefit_never_exceeds_execution_time_proxy(self, graph):
        # Recoverable time cannot exceed the whole timeline.
        total_time = sum(n.duration for n in graph.nodes)
        assert expected_benefit(graph).total <= total_time + 1e-9

    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_final_durations_nonnegative(self, graph):
        result = expected_benefit(graph)
        assert all(d >= -1e-12 for d in result.final_durations)

    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_estimator_is_deterministic(self, graph):
        a = expected_benefit(graph)
        b = expected_benefit(graph)
        assert a.total == b.total
        assert a.final_durations == b.final_durations

    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_estimator_does_not_mutate_graph(self, graph):
        before = [n.duration for n in graph.nodes]
        expected_benefit(graph)
        assert [n.duration for n in graph.nodes] == before

    @given(graphs)
    @settings(max_examples=200, deadline=None)
    def test_full_subset_equals_full_pass(self, graph):
        full = expected_benefit(graph)
        indices = [n.index for n in graph.problematic_nodes()]
        if indices:
            subset = expected_benefit_subset(graph, indices)
            assert abs(subset.total - full.total) < 1e-9

    @given(graphs)
    @settings(max_examples=150, deadline=None)
    def test_per_node_benefits_sum_to_total(self, graph):
        result = expected_benefit(graph)
        assert abs(sum(b.est_benefit for b in result.per_node)
                   - result.total) < 1e-9


# ----------------------------------------------------------------------
# RegionSet vs a naive model
# ----------------------------------------------------------------------
regions_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=10_000),
              st.integers(min_value=1, max_value=500)),
    min_size=0, max_size=30,
)
queries_strategy = st.lists(
    st.tuples(st.integers(min_value=-100, max_value=11_000),
              st.integers(min_value=1, max_value=600)),
    min_size=1, max_size=30,
)


class TestRegionSetModel:
    @given(regions_strategy, queries_strategy)
    @settings(max_examples=200, deadline=None)
    def test_matches_agree_with_naive_scan(self, regions, queries):
        rs = RegionSet()
        naive = []
        for start, size in regions:
            rs.add(start, size)
            naive.append((start, size))
        for address, size in queries:
            got = {(r.start, r.size) for r in rs.matches(address, size)}
            want = {
                (s, z) for (s, z) in naive
                if address < s + z and s < address + size
            }
            assert got == want

    @given(regions_strategy)
    @settings(max_examples=100, deadline=None)
    def test_drop_range_removes_only_contained(self, regions):
        rs = RegionSet()
        for start, size in regions:
            rs.add(start, size)
        rs.drop_range(0, 5_000)
        for r in rs.regions():
            assert not (r.start >= 0 and r.end <= 5_000)


# ----------------------------------------------------------------------
# Symbol normalisation
# ----------------------------------------------------------------------
_ident = st.text(alphabet="abcdefgXYZ_:", min_size=1, max_size=12)


@st.composite
def cpp_names(draw, depth=2):
    base = draw(_ident)
    if depth > 0 and draw(st.booleans()):
        inner = draw(st.lists(cpp_names(depth=depth - 1),  # type: ignore
                              min_size=1, max_size=3))
        return f"{base}<{', '.join(inner)}>"
    return base


class TestSymbolProperties:
    @given(cpp_names())
    @settings(max_examples=300, deadline=None)
    def test_strip_removes_all_angle_brackets(self, name):
        stripped = strip_template_params(name)
        assert "<" not in stripped
        assert ">" not in stripped

    @given(cpp_names())
    @settings(max_examples=300, deadline=None)
    def test_strip_is_idempotent(self, name):
        once = strip_template_params(name)
        assert strip_template_params(once) == once

    @given(cpp_names())
    @settings(max_examples=300, deadline=None)
    def test_strip_preserves_prefix(self, name):
        stripped = strip_template_params(name)
        head = name.split("<", 1)[0]
        assert stripped.startswith(head)

    @given(cpp_names(), cpp_names())
    @settings(max_examples=200, deadline=None)
    def test_instances_of_same_template_fold(self, a, b):
        base = "ns::routine"
        assert demangle_base_name(f"{base}<{a}>") == \
            demangle_base_name(f"{base}<{b}>")
