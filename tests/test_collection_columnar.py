"""Equivalence suite for the columnar-at-birth collection engine.

The collection fast path (``record_engine="columnar"``) must be
*indistinguishable* from the legacy row engine everywhere bytes can
leak: final reports, per-stage data JSON, the executor wire format,
and the cache. These tests fuzz workloads through both engines and
compare bytes, plus unit-test the machinery the fast path leans on —
:class:`~repro.core.records.LazyRows`, the native
``EventTable.to_batch`` encode, idempotent region watches, intern
table resets, and queue-latency stamping.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.synthetic import ScriptedApp
from repro.core.diogenes import Diogenes, DiogenesConfig
from repro.core.jsonio import dumps_report
from repro.core.records import LazyRows
from repro.core.stage1_baseline import run_stage1
from repro.core.stage2_tracing import run_stage2
from repro.core.stage3_memtrace import run_stage3
from repro.core.stage4_syncuse import run_stage4
from repro.exec.columnar import decode_tree, encode_records, encode_tree
from repro.fuzz.generator import FuzzedApp
from repro.instr.loadstore import RegionSet
from repro.instr.stacks import intern_table_sizes, reset_intern_tables

COLUMNAR = DiogenesConfig(record_engine="columnar")
ROWS = DiogenesConfig(record_engine="rows")

_steps = st.sampled_from([
    ("work", 50e-6),
    ("launch", 100e-6),
    ("launch", 400e-6),
    ("sync",),
    ("h2d", 0),
    ("h2d_same", 0),
    ("d2h", 0),
    ("read",),
    ("free",),
])
scripts = st.lists(_steps, min_size=1, max_size=20)


def _report_bytes(app_factory, config) -> str:
    return dumps_report(Diogenes(app_factory(), config).run())


# ----------------------------------------------------------------------
# Engine equivalence: fuzzed workloads, byte-identical reports
# ----------------------------------------------------------------------
class TestEngineEquivalence:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_fuzzed_reports_byte_identical(self, seed):
        make = lambda: FuzzedApp(seed=seed, segments=4)
        assert _report_bytes(make, COLUMNAR) == _report_bytes(make, ROWS)

    @given(scripts)
    @settings(max_examples=25, deadline=None)
    def test_scripted_reports_byte_identical(self, script):
        make = lambda: ScriptedApp(script)
        assert _report_bytes(make, COLUMNAR) == _report_bytes(make, ROWS)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_stage_data_round_trips_exactly(self, seed):
        """Builder-produced stage data serializes to the same JSON as
        dataclass-produced stage data, and survives ``from_json``."""
        results = {}
        for name, cfg in (("columnar", COLUMNAR), ("rows", ROWS)):
            s1 = run_stage1(FuzzedApp(seed=seed, segments=3), cfg)
            s2 = run_stage2(FuzzedApp(seed=seed, segments=3), s1, cfg)
            s3 = run_stage3(FuzzedApp(seed=seed, segments=3), s1, cfg,
                            mode="memtrace")
            s4 = run_stage4(FuzzedApp(seed=seed, segments=3), s1, s3, cfg)
            results[name] = [d.to_json() for d in (s1, s2, s3, s4)]
        assert json.dumps(results["columnar"], sort_keys=False) == \
            json.dumps(results["rows"], sort_keys=False)
        # Exact round-trip through from_json for both engines.
        for cls, payload in zip(
                (type(s1), type(s2), type(s3), type(s4)),
                results["columnar"]):
            assert cls.from_json(payload).to_json() == payload


# ----------------------------------------------------------------------
# Wire format: native column batches == row-path encodes
# ----------------------------------------------------------------------
class TestWireEquivalence:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_to_wire_matches_encode_tree_of_to_json(self, seed):
        s1 = run_stage1(FuzzedApp(seed=seed, segments=3), COLUMNAR)
        s2 = run_stage2(FuzzedApp(seed=seed, segments=3), s1, COLUMNAR)
        # Order matters: to_wire() first takes the native columnar
        # path (events still lazy); to_json() then materializes rows.
        wire = s2.to_wire()
        expected = encode_tree(s2.to_json())
        assert json.dumps(wire, sort_keys=False) == \
            json.dumps(expected, sort_keys=False)
        assert decode_tree(json.loads(json.dumps(wire))) == s2.to_json()

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_native_batch_matches_row_encode(self, seed):
        s1 = run_stage1(FuzzedApp(seed=seed, segments=3), COLUMNAR)
        s2 = run_stage2(FuzzedApp(seed=seed, segments=3), s1, COLUMNAR)
        native = s2.table().to_batch()
        rows = encode_records([e.to_json() for e in s2.events])
        assert json.dumps(native, sort_keys=False) == \
            json.dumps(rows, sort_keys=False)


# ----------------------------------------------------------------------
# LazyRows: indistinguishable from an eager list
# ----------------------------------------------------------------------
class TestLazyRows:
    def test_materializes_on_read(self):
        rows = LazyRows(lambda: [1, 2, 3])
        assert not rows.materialized
        assert rows[1] == 2
        assert rows.materialized
        assert list(rows) == [1, 2, 3]

    def test_materializes_on_mutation(self):
        rows = LazyRows(lambda: [1, 2])
        rows.append(3)
        assert rows.materialized
        assert list(rows) == [1, 2, 3]

    def test_comparison_with_lazy_operand(self):
        a = LazyRows(lambda: [1, 2])
        b = LazyRows(lambda: [1, 2])
        assert a == b  # both sides must materialize
        assert a == [1, 2] and [1, 2] == b

    def test_thunk_runs_once(self):
        calls = []
        rows = LazyRows(lambda: calls.append(1) or [0])
        len(rows), len(rows)
        assert calls == [1]


# ----------------------------------------------------------------------
# RegionSet.ensure: idempotent watches, identical matches
# ----------------------------------------------------------------------
regions_strategy = st.lists(
    st.tuples(st.integers(0, 500), st.integers(1, 64),
              st.sampled_from(["d2h", "managed", "pinned"])),
    min_size=0, max_size=30)


class TestRegionEnsure:
    def test_duplicate_ensure_skipped(self):
        rs = RegionSet()
        assert rs.ensure(100, 8, origin="d2h") is not None
        assert rs.ensure(100, 8, origin="d2h") is None
        assert len(rs) == 1
        # Different metadata is a different watch.
        assert rs.ensure(100, 8, origin="managed") is not None
        assert len(rs) == 2

    def test_remove_forgets_ensured_key(self):
        rs = RegionSet()
        region = rs.ensure(100, 8, origin="d2h")
        rs.remove(region)
        assert len(rs) == 0
        assert rs.ensure(100, 8, origin="d2h") is not None

    def test_drop_range_forgets_ensured_keys(self):
        rs = RegionSet()
        rs.ensure(100, 8, origin="d2h")
        rs.ensure(200, 8, origin="d2h")
        assert rs.drop_range(0, 1000) == 2
        assert rs.ensure(100, 8, origin="d2h") is not None

    @given(regions_strategy,
           st.lists(st.tuples(st.integers(0, 600), st.integers(1, 32)),
                    min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_ensure_matches_deduplicated_add(self, regions, queries):
        """ensure() with duplicated input == add() on deduped input."""
        ensured, added = RegionSet(), RegionSet()
        seen = set()
        for start, size, origin in regions + regions:
            ensured.ensure(start, size, origin=origin)
            if (start, size, origin) not in seen:
                seen.add((start, size, origin))
                added.add(start, size, origin=origin)
        assert len(ensured) == len(added)
        for address, size in queries:
            got = [(r.start, r.size, r.meta["origin"])
                   for r in ensured.matches(address, size)]
            want = [(r.start, r.size, r.meta["origin"])
                    for r in added.matches(address, size)]
            assert got == want


# ----------------------------------------------------------------------
# Process hygiene: intern-table reset, queue latency stamping
# ----------------------------------------------------------------------
class TestProcessHygiene:
    def test_reset_intern_tables_drops_entries(self):
        Diogenes(FuzzedApp(seed=7, segments=2), COLUMNAR).run()
        before = intern_table_sizes()
        assert before["frames"] > 0 and before["snapshots"] > 0
        freed = reset_intern_tables()
        assert freed == before
        after = intern_table_sizes()
        assert all(after[k] == 0 for k in after)

    def test_claim_stamps_queue_latency(self, tmp_path):
        from repro.fleet.backends import make_queue

        queue = make_queue("file", tmp_path / "queue")
        job = queue.submit("fuzzed", {"seed": 1}, {}, "key-1")
        assert job.claimed is None
        claimed = queue.claim_next(worker="w-1", lease_seconds=30.0)
        assert claimed.id == job.id
        assert claimed.claimed is not None
        assert claimed.claimed >= claimed.created
        # The stamp persists and round-trips; pre-upgrade records
        # without the key still load.
        again = type(job).from_json(claimed.to_json())
        assert again.claimed == claimed.claimed
        legacy = dict(claimed.to_json())
        legacy.pop("claimed")
        assert type(job).from_json(legacy).claimed is None

    def test_unknown_record_engine_rejected(self):
        import pytest

        from repro.core.colbuild import record_engine_of

        class Cfg:
            record_engine = "arrow"

        with pytest.raises(ValueError, match="unknown record_engine"):
            record_engine_of(Cfg())
