"""Tests for the NVProf- and HPCToolkit-like comparison profilers."""

import pytest

from repro.apps.synthetic import HiddenPrivateSyncApp, UnnecessarySyncApp
from repro.profilers import (
    HpcToolkitProfiler,
    NvprofCrashedError,
    NvprofProfiler,
)
from repro.profilers.base import rank_entries


class TestRankEntries:
    def test_ordering_and_percentages(self):
        entries = rank_entries({"a": 3.0, "b": 1.0}, {"a": 5, "b": 2}, 10.0)
        assert [e.name for e in entries] == ["a", "b"]
        assert entries[0].rank == 1
        assert entries[0].percent == pytest.approx(30.0)
        assert entries[1].calls == 2

    def test_zero_execution_time(self):
        entries = rank_entries({"a": 1.0}, {}, 0.0)
        assert entries[0].percent == 0.0


class TestNvprof:
    def test_reports_sync_dominated_profile(self):
        app = UnnecessarySyncApp(iterations=20, kernel_time=1e-3,
                                 cpu_time=1e-5)
        result = NvprofProfiler(record_limit=None).profile(app)
        assert result.entries[0].name == "cudaDeviceSynchronize"
        assert result.entries[0].percent > 50.0
        assert result.entries[0].calls == 20

    def test_result_metadata(self):
        result = NvprofProfiler(record_limit=None).profile(
            UnnecessarySyncApp(iterations=2))
        assert result.tool == "nvprof"
        assert result.workload_name == "synthetic-unnecessary-sync"
        assert result.execution_time > 0

    def test_blind_to_private_api(self):
        result = NvprofProfiler(record_limit=None).profile(
            HiddenPrivateSyncApp(iterations=4))
        names = {e.name for e in result.entries}
        assert not any(name.startswith("__priv") for name in names)

    def test_crashes_past_record_limit(self):
        app = UnnecessarySyncApp(iterations=50)
        with pytest.raises(NvprofCrashedError) as exc:
            NvprofProfiler(record_limit=100).profile(app)
        assert exc.value.records == 100

    def test_entry_lookup_helpers(self):
        result = NvprofProfiler(record_limit=None).profile(
            UnnecessarySyncApp(iterations=3))
        assert result.rank_of("cudaDeviceSynchronize") == 1
        assert result.entry("cudaNothing") is None
        assert len(result.top(2)) == 2


class TestHpcToolkit:
    def test_sampling_attributes_to_apis(self):
        app = UnnecessarySyncApp(iterations=20, kernel_time=1e-3,
                                 cpu_time=1e-5)
        result = HpcToolkitProfiler(period=20e-6).profile(app)
        assert result.entries[0].name == "cudaDeviceSynchronize"

    def test_sees_private_api_symbols(self):
        # Sampling-based tools do not depend on CUPTI, so private driver
        # entry points show up (unlike NVProf).
        result = HpcToolkitProfiler(period=10e-6).profile(
            HiddenPrivateSyncApp(iterations=4))
        names = {e.name for e in result.entries}
        assert "__priv_fence" in names

    def test_unwind_failures_undercount_waits(self):
        app = UnnecessarySyncApp(iterations=30, kernel_time=1e-3,
                                 cpu_time=1e-5)
        ideal = HpcToolkitProfiler(period=20e-6,
                                   wait_unwind_failure=0.0).profile(app)
        lossy = HpcToolkitProfiler(period=20e-6,
                                   wait_unwind_failure=0.5).profile(app)
        ideal_t = ideal.entry("cudaDeviceSynchronize").total_time
        lossy_t = lossy.entry("cudaDeviceSynchronize").total_time
        assert lossy_t < ideal_t * 0.75

    def test_ideal_sampler_approximates_nvprof(self):
        app = UnnecessarySyncApp(iterations=20, kernel_time=1e-3,
                                 cpu_time=1e-5)
        sampled = HpcToolkitProfiler(period=10e-6,
                                     wait_unwind_failure=0.0).profile(app)
        exact = NvprofProfiler(record_limit=None).profile(
            UnnecessarySyncApp(iterations=20, kernel_time=1e-3,
                               cpu_time=1e-5))
        s = sampled.entry("cudaDeviceSynchronize").total_time
        e = exact.entry("cudaDeviceSynchronize").total_time
        assert s == pytest.approx(e, rel=0.1)

    def test_deterministic_given_seed(self):
        app = UnnecessarySyncApp(iterations=10)
        a = HpcToolkitProfiler(period=20e-6, seed=1).profile(app)
        b = HpcToolkitProfiler(period=20e-6, seed=1).profile(
            UnnecessarySyncApp(iterations=10))
        assert [(e.name, e.total_time) for e in a.entries] == \
            [(e.name, e.total_time) for e in b.entries]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HpcToolkitProfiler(period=0.0)
        with pytest.raises(ValueError):
            HpcToolkitProfiler(wait_unwind_failure=1.5)


class TestRenderers:
    def test_nvprof_summary_sections(self):
        from repro.cupti import CuptiSubscription
        from repro.profilers.render import (
            gpu_activity_totals,
            render_nvprof_summary,
        )
        from repro.runtime.context import ExecutionContext

        ctx = ExecutionContext.create()
        sub = CuptiSubscription(machine=ctx.machine)
        ctx.driver.attach_cupti(sub)
        UnnecessarySyncApp(iterations=5).run(ctx)
        result = NvprofProfiler(record_limit=None).profile(
            UnnecessarySyncApp(iterations=5))
        text = render_nvprof_summary(result, gpu_activity_totals(sub))
        assert "==PROF== Profiling result" in text
        assert "GPU activities:" in text
        assert "API calls:" in text
        assert "cudaDeviceSynchronize" in text
        assert "[CUDA memcpy D2H]" in text

    def test_hpctoolkit_listing(self):
        from repro.profilers.render import render_hpctoolkit_profile

        result = HpcToolkitProfiler(period=50e-6).profile(
            UnnecessarySyncApp(iterations=5))
        text = render_hpctoolkit_profile(result)
        assert "hpcviewer:" in text
        assert "Exclusive" in text
        assert "cudaDeviceSynchronize" in text
