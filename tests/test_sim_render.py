"""Tests for the ASCII timeline renderer."""

import numpy as np
import pytest

from repro.sim.render import render_timeline


class TestRenderTimeline:
    def _run_simple(self, ctx):
        rt = ctx.cudart
        dev = rt.cudaMalloc(1 << 20)
        out = ctx.host_array(1 << 12)
        rt.cudaLaunchKernel("k", 1e-3, writes=[(dev, np.ones(1 << 12))])
        rt.cudaDeviceSynchronize()
        ctx.cpu_work(0.5e-3)
        rt.cudaMemcpy(out, dev)

    def test_lanes_present(self, ctx):
        self._run_simple(ctx)
        text = render_timeline(ctx.machine, width=60)
        assert "CPU" in text
        assert "GPU compute_0" in text
        assert "GPU copy_d2h" in text
        assert "K" in text  # the kernel
        assert "w" in text  # the blocked wait
        assert "C" in text  # the final copy

    def test_rows_share_width(self, ctx):
        self._run_simple(ctx)
        rows = render_timeline(ctx.machine, width=50).splitlines()
        lanes = [r for r in rows if r.startswith(("CPU", "GPU"))]
        assert len({len(r) for r in lanes}) == 1

    def test_empty_machine(self, ctx):
        assert render_timeline(ctx.machine) == "(empty timeline)"

    def test_width_validation(self, ctx):
        self._run_simple(ctx)
        with pytest.raises(ValueError):
            render_timeline(ctx.machine, width=3)

    def test_multi_engine_lanes(self):
        from repro.runtime.context import ExecutionContext
        from repro.sim.machine import MachineConfig

        ctx = ExecutionContext.create(MachineConfig(compute_engines=2))
        rt = ctx.cudart
        s1 = rt.cudaStreamCreate()
        rt.cudaLaunchKernel("a", 1e-3, stream=0)
        rt.cudaLaunchKernel("b", 1e-3, stream=s1)
        rt.cudaDeviceSynchronize()
        text = render_timeline(ctx.machine, width=40)
        assert "GPU compute_0" in text
        assert "GPU compute_1" in text
        # Both kernels overlap: both compute lanes show K at the start.
        lanes = {line.split()[1]: line.split(maxsplit=2)[2]
                 for line in text.splitlines()
                 if line.startswith("GPU compute")}
        assert lanes["compute_0"].lstrip(".").startswith("K")
        assert lanes["compute_1"].lstrip(".").startswith("K")


class TestSnapshotGpuOps:
    def test_snapshot_freezes_ops(self, ctx):
        from repro.sim.trace import snapshot_gpu_ops

        rt = ctx.cudart
        rt.cudaLaunchKernel("k1", 1e-3)
        rt.cudaDeviceSynchronize()
        records = snapshot_gpu_ops(ctx.machine.gpu)
        assert len(records) == 1
        rec = records[0]
        assert rec.kind == "kernel"
        assert rec.name == "k1"
        assert rec.duration == pytest.approx(1e-3)

    def test_snapshot_skips_cancelled(self, ctx):
        import math

        from repro.sim.trace import snapshot_gpu_ops

        op = ctx.driver.cuLaunchKernel("never", math.inf)
        ctx.machine.gpu.cancel_op(op, now=1.0)
        assert snapshot_gpu_ops(ctx.machine.gpu) == []
