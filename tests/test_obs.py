"""The self-observability subsystem (`repro.obs`).

Covers the tracer (span nesting, wall/virtual attribution, JSONL and
Chrome-trace exporters), the metrics registry (counters/gauges/
histograms, JSON and Prometheus text exporters), the no-op default
(observability off must record nothing), and the pipeline integration
(a full five-stage Diogenes run emits a span per stage and the
documented counters).
"""

from __future__ import annotations

import json
import math
import re

import pytest

import repro.obs as obs
from repro.apps.synthetic import DuplicateTransferApp, UnnecessarySyncApp
from repro.core.diogenes import Diogenes
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    prometheus_name,
)
from repro.obs.render import render_metrics, render_session, render_stage_summary
from repro.obs.tracer import Tracer, _NOOP_HANDLE


@pytest.fixture(autouse=True)
def _observability_off():
    """Every test starts and ends with observability disabled."""
    obs.disable()
    yield
    obs.disable()


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0


class FakeWallClock:
    """Deterministic stand-in for the tracer's wall-time source.

    Patched in place of the ``time`` module inside ``repro.obs.tracer``
    (whose only use of it is ``perf_counter``), so wall-time assertions
    are exact instead of ``>= 0`` smoke checks — no dependency on real
    scheduling, and safe under parallel test runs.
    """

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def perf_counter(self) -> float:
        return self.now


@pytest.fixture()
def wall_clock(monkeypatch):
    import repro.obs.tracer as tracer_module

    fake = FakeWallClock()
    monkeypatch.setattr(tracer_module, "time", fake)
    return fake


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_parent_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("middle") as middle:
                with tracer.span("inner") as inner:
                    pass
        assert outer.parent_id is None and outer.depth == 0
        assert middle.parent_id == outer.span_id and middle.depth == 1
        assert inner.parent_id == middle.span_id and inner.depth == 2
        # Finish order is innermost-first.
        assert [s.name for s in tracer.spans] == ["inner", "middle", "outer"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id
        assert a.span_id != b.span_id

    def test_virtual_time_attribution(self, wall_clock):
        tracer = Tracer()
        clock = FakeClock()
        clock.now = 1.5
        with tracer.span("work", clock=clock):
            clock.now = 4.0
            wall_clock.advance(0.125)
        (sp,) = tracer.spans
        assert sp.virtual_start == 1.5
        assert sp.virtual_end == 4.0
        assert sp.virtual_duration == pytest.approx(2.5)
        assert sp.wall_duration == 0.125

    def test_wall_time_is_measured_from_the_tracer_epoch(self, wall_clock):
        wall_clock.advance(5.0)  # time passing before the tracer exists
        tracer = Tracer()
        wall_clock.advance(0.25)
        with tracer.span("work"):
            wall_clock.advance(1.0)
        (sp,) = tracer.spans
        assert sp.wall_start == 0.25
        assert sp.wall_end == 1.25
        assert sp.wall_duration == 1.0

    def test_span_without_clock_has_no_virtual_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            pass
        assert tracer.spans[0].virtual_duration is None

    def test_attrs_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("s", workload="app") as sp:
            sp.set(events=3).set(syncs=2)
        assert tracer.spans[0].attrs == {
            "workload": "app", "events": 3, "syncs": 2}

    def test_exception_marks_span_and_still_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (sp,) = tracer.spans
        assert sp.wall_end is not None
        assert sp.attrs["error"] == "ValueError"

    def test_decorator_traces_each_call(self):
        tracer = Tracer()

        @tracer.trace("fn")
        def double(x):
            return 2 * x

        assert double(3) == 6 and double(4) == 8
        assert [s.name for s in tracer.spans] == ["fn", "fn"]

    def test_find_by_prefix(self):
        tracer = Tracer()
        for name in ("stage.one", "stage.two", "other"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.find("stage.")] == [
            "stage.one", "stage.two"]


class TestTracerExporters:
    def _populated(self, wall_clock) -> Tracer:
        # Fully scripted timings (binary-exact floats), so exporter
        # tests can assert exact timestamps rather than sign checks:
        #   run      wall [0.0, 0.375]
        #   stage.a  wall [0.125, 0.375], virtual [0.0, 0.25]
        tracer = Tracer()
        clock = FakeClock()
        with tracer.span("run"):
            wall_clock.advance(0.125)
            with tracer.span("stage.a", clock=clock, k="v"):
                wall_clock.advance(0.25)
                clock.now = 0.25
        return tracer

    def test_jsonl_round_trip(self, wall_clock):
        tracer = self._populated(wall_clock)
        lines = tracer.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        by_name = {p["name"]: p for p in parsed}
        assert by_name["stage.a"]["attrs"] == {"k": "v"}
        assert by_name["stage.a"]["virtual_end"] == 0.25
        assert by_name["stage.a"]["wall_start"] == 0.125
        assert by_name["stage.a"]["parent_id"] == by_name["run"]["span_id"]

    def test_write_jsonl(self, tmp_path, wall_clock):
        path = tmp_path / "trace.jsonl"
        self._populated(wall_clock).write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2 and all(json.loads(li) for li in lines)

    def test_chrome_trace_structure(self, wall_clock):
        trace = self._populated(wall_clock).to_chrome_trace()
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"wall time",
                                                    "virtual time"}
        complete = [e for e in events if e["ph"] == "X"]
        # Two wall spans + one virtual span (only stage.a had a clock).
        assert len(complete) == 3
        wall = {e["name"]: e for e in complete if e["pid"] == 1}
        assert wall["run"]["ts"] == 0.0
        assert wall["run"]["dur"] == 0.375e6
        assert wall["stage.a"]["ts"] == 0.125e6
        assert wall["stage.a"]["dur"] == 0.25e6
        virtual = [e for e in complete if e["pid"] == 2]
        assert [e["name"] for e in virtual] == ["stage.a"]
        assert virtual[0]["ts"] == 0.0
        assert virtual[0]["dur"] == 0.25e6

    def test_chrome_trace_file_is_loadable(self, tmp_path, wall_clock):
        path = tmp_path / "trace.json"
        self._populated(wall_clock).write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded and loaded["displayTimeUnit"] == "ms"


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        reg.counter("core.syncs_traced").inc()
        reg.counter("core.syncs_traced").inc(4)
        assert reg.counter("core.syncs_traced").value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_labelled_series_are_distinct(self):
        reg = MetricsRegistry()
        reg.counter("instr.probe_hits", probe="a").inc(2)
        reg.counter("instr.probe_hits", probe="b").inc(3)
        assert reg.counter("instr.probe_hits", probe="a").value == 2
        assert len(reg.series("instr.probe_hits")) == 2

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("sim.engine_busy_seconds", engine="compute_0")
        g.set(1.5)
        g.add(0.5)
        assert g.value == pytest.approx(2.0)

    def test_histogram_buckets_are_cumulative(self):
        h = Histogram("h", (), buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        assert h.min == 0.05 and h.max == 50.0
        assert h.cumulative() == [(0.1, 1), (1.0, 3), (10.0, 4),
                                  (math.inf, 5)]

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", (), buckets=(1.0, 0.1))

    def test_quantile_interpolates_within_buckets(self):
        h = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 2.5, 3.5):
            h.observe(v)
        # p50 rank = 2 observations -> exactly the top of bucket 2.0.
        assert h.quantile(0.5) == pytest.approx(2.0)
        # p75 rank = 3 -> halfway through the (2.0, 4.0] bucket.
        assert h.quantile(0.75) == pytest.approx(3.0)
        assert h.quantile(1.0) == 3.5  # clamped to the observed max
        assert h.quantile(0.0) == 0.5  # the observed min

    def test_quantile_is_clamped_to_observed_range(self):
        h = Histogram("h", (), buckets=(10.0,))
        h.observe(3.0)
        # Interpolation alone would say 10.0; the true max is 3.0.
        for q in (0.5, 0.9, 1.0):
            assert h.quantile(q) == 3.0

    def test_quantile_beyond_last_bucket_reports_the_max(self):
        h = Histogram("h", (), buckets=(1.0,))
        h.observe(0.5)
        h.observe(99.0)
        assert h.quantile(0.95) == 99.0

    def test_quantile_edge_cases(self):
        h = Histogram("h", ())
        assert h.quantile(0.5) is None  # empty histogram
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_json_export_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("a.count").inc(7)
        reg.gauge("a.level", zone="hot").set(0.25)
        reg.histogram("a.lat", buckets=(1.0,)).observe(0.5)
        dumped = json.loads(json.dumps(reg.as_json()))
        assert dumped["a.count"][0]["value"] == 7
        assert dumped["a.level"][0]["labels"] == {"zone": "hot"}
        assert dumped["a.lat"][0]["count"] == 1
        assert dumped["a.lat"][0]["buckets"] == [{"le": 1.0, "count": 1}]

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a.count").inc()
        path = tmp_path / "m.json"
        reg.write_json(str(path))
        assert json.loads(path.read_text())["a.count"][0]["value"] == 1


def _parse_prometheus(text: str):
    """Minimal conformant scraper for exposition format 0.0.4.

    Returns ``(types, samples)``: TYPE headers by family name, and
    ``{(name, sorted-label-tuple): value}`` for every sample line.
    """
    types: dict[str, str] = {}
    samples: dict[tuple[str, tuple], float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        match = re.match(
            r"^([a-zA-Z_][a-zA-Z0-9_]*)(?:\{(.*)\})? (.+)$", line)
        assert match, f"unparseable sample line: {line!r}"
        name, labeltext, value = match.groups()
        labels = tuple(sorted(
            re.findall(r'(\w+)="((?:[^"\\]|\\.)*)"', labeltext or "")))
        samples[(name, labels)] = float(value)
    return types, samples


class TestPrometheusFormat:
    def test_name_sanitisation(self):
        assert prometheus_name("sim.ops_enqueued") == "repro_sim_ops_enqueued"
        assert prometheus_name("a-b.c") == "repro_a_b_c"

    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("core.syncs_traced").inc(11)
        reg.gauge("sim.engine_busy_seconds", engine="copy_d2h").set(0.5)
        text = reg.to_prometheus()
        assert "# TYPE repro_core_syncs_traced counter\n" in text
        assert "repro_core_syncs_traced 11\n" in text
        assert ('repro_sim_engine_busy_seconds{engine="copy_d2h"} 0.5'
                in text)

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("core.lat", buckets=(0.5, 2.0), stage="s1")
        h.observe(0.25)
        h.observe(1.0)
        text = reg.to_prometheus()
        assert "# TYPE repro_core_lat histogram" in text
        assert 'repro_core_lat_bucket{stage="s1",le="0.5"} 1' in text
        assert 'repro_core_lat_bucket{stage="s1",le="2"} 2' in text
        assert 'repro_core_lat_bucket{stage="s1",le="+Inf"} 2' in text
        assert 'repro_core_lat_sum{stage="s1"} 1.25' in text
        assert 'repro_core_lat_count{stage="s1"} 2' in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c').inc()
        line = reg.to_prometheus().splitlines()[-1]
        assert line == 'repro_c{path="a\\"b\\\\c"} 1'

    def test_every_sample_line_is_well_formed(self):
        reg = MetricsRegistry()
        reg.counter("a.b", x="1").inc(2)
        reg.gauge("c.d").set(1.25)
        reg.histogram("e.f", buckets=(1.0,)).observe(2.0)
        sample = re.compile(
            r"^[a-zA-Z_][a-zA-Z0-9_]*(\{[^{}]*\})? [^ ]+$")
        for line in reg.to_prometheus().splitlines():
            if line.startswith("#"):
                continue
            assert sample.match(line), line

    def test_scrape_parse_round_trip(self):
        """A conformant scraper reads back exactly what was recorded.

        Parses the exposition text the way Prometheus does — TYPE
        headers, label sets, escaped values — and checks the parsed
        samples against the registry, including histogram invariants
        (monotone cumulative buckets, ``+Inf`` equals ``_count``).
        """
        reg = MetricsRegistry()
        reg.counter("exec.jobs_executed", stage="stage1").inc(3)
        reg.gauge("service.queue_depth").set(2)
        h = reg.histogram("exec.job_wall_seconds", buckets=(0.1, 1.0),
                          stage="s1")
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        types, samples = _parse_prometheus(reg.to_prometheus())

        assert types["repro_exec_jobs_executed"] == "counter"
        assert types["repro_service_queue_depth"] == "gauge"
        assert types["repro_exec_job_wall_seconds"] == "histogram"
        assert samples["repro_exec_jobs_executed",
                       (("stage", "stage1"),)] == 3
        assert samples["repro_service_queue_depth", ()] == 2
        base = (("stage", "s1"),)
        assert samples["repro_exec_job_wall_seconds_count", base] == 3
        assert samples["repro_exec_job_wall_seconds_sum", base] == \
            pytest.approx(5.55)
        buckets = sorted(
            (float(dict(labels)["le"]), value)
            for (name, labels), value in samples.items()
            if name == "repro_exec_job_wall_seconds_bucket")
        assert buckets == [(0.1, 1), (1.0, 2), (math.inf, 3)]
        # Cumulative counts never decrease, and +Inf equals _count.
        assert all(a[1] <= b[1] for a, b in zip(buckets, buckets[1:]))
        assert buckets[-1][1] == samples[
            "repro_exec_job_wall_seconds_count", base]
        # Every sample belongs to a family announced by a TYPE header.
        for name, _labels in samples:
            family = re.sub(r"_(bucket|sum|count)$", "", name) \
                if name.endswith(("_bucket", "_sum", "_count")) else name
            assert family in types, name

    def test_fleet_gauges_round_trip_with_hostile_worker_labels(self):
        """The fleet's per-worker gauges survive a scrape-parse round
        trip even when worker ids carry every character the exposition
        format must escape (quotes, backslashes, newlines).

        Worker ids default to ``<hostname>-<pid>`` but are
        user-settable via ``diogenes worker --id``, so the ``worker=``
        label is the one label an operator can make hostile.
        """
        reg = MetricsRegistry()
        hostile = 'node"7\\rack\nshelf'
        reg.gauge("service.worker_jobs", worker=hostile).set(4)
        reg.gauge("service.worker_jobs", worker="plain-w2").set(9)
        reg.gauge("service.leases_active").set(2)
        reg.gauge("service.fleet_workers_live").set(3)
        reg.counter("service.fleet_completions", worker=hostile).inc(4)
        types, samples = _parse_prometheus(reg.to_prometheus())

        assert types["repro_service_worker_jobs"] == "gauge"
        assert types["repro_service_fleet_completions"] == "counter"
        assert samples["repro_service_leases_active", ()] == 2
        assert samples["repro_service_fleet_workers_live", ()] == 3

        def unescape(value: str) -> str:
            return (value.replace(r"\n", "\n").replace(r"\"", '"')
                    .replace(r"\\", "\\"))

        workers = {
            unescape(dict(labels)["worker"]): value
            for (name, labels), value in samples.items()
            if name == "repro_service_worker_jobs"}
        assert workers == {hostile: 4, "plain-w2": 9}
        ((labels, value),) = [
            (labels, value) for (name, labels), value in samples.items()
            if name == "repro_service_fleet_completions"]
        assert unescape(dict(labels)["worker"]) == hostile and value == 4


# ----------------------------------------------------------------------
# No-op mode
# ----------------------------------------------------------------------
class TestDisabledMode:
    def test_off_by_default(self):
        assert obs.active() is None and not obs.is_enabled()

    def test_span_returns_shared_noop_handle(self):
        handle = obs.span("anything", clock=FakeClock(), attr=1)
        assert handle is _NOOP_HANDLE
        with handle as sp:
            sp.set(ignored=True)
            assert sp.attrs == {}
            assert sp.wall_duration == 0.0 and sp.virtual_duration is None

    def test_metric_helpers_record_nothing(self):
        obs.count("c", 5)
        obs.gauge("g", 1.0)
        obs.observe("h", 0.5)
        with obs.enabled() as session:
            pass
        assert len(session.metrics) == 0

    def test_disabled_run_emits_nothing(self):
        Diogenes(UnnecessarySyncApp(iterations=2)).run()
        assert obs.active() is None

    def test_enabled_scope_restores_previous(self):
        outer = obs.enable()
        with obs.enabled() as inner:
            assert obs.active() is inner and inner is not outer
        assert obs.active() is outer
        obs.disable()
        assert obs.active() is None

    def test_record_probe_is_delta_based(self):
        class FakeProbe:
            label = "p"
            hits = 10

        probe = FakeProbe()
        with obs.enabled() as session:
            obs.record_probe(probe)
            obs.record_probe(probe)  # no new hits -> no double count
            probe.hits = 15
            obs.record_probe(probe)
        counter = session.metrics.get("instr.probe_hits", probe="p")
        assert counter.value == 15


# ----------------------------------------------------------------------
# Pipeline integration
# ----------------------------------------------------------------------
EXPECTED_STAGE_SPANS = [
    "stage.stage1_baseline",
    "stage.stage2_tracing",
    "stage.stage3_memtrace",
    "stage.stage3_hashing",
    "stage.stage4_syncuse",
    "stage.stage5_analysis",
]


class TestPipelineIntegration:
    @pytest.fixture(scope="class")
    def session(self):
        obs.disable()
        with obs.enabled() as session:
            report = Diogenes(DuplicateTransferApp(iterations=4)).run()
        session.report = report
        return session

    def test_every_stage_emits_a_span(self, session):
        names = [s.name for s in session.tracer.find("stage.")]
        assert names == EXPECTED_STAGE_SPANS

    def test_stage_spans_nest_under_the_run_span(self, session):
        (run_span,) = session.tracer.find("diogenes.run")
        for sp in session.tracer.find("stage."):
            assert sp.parent_id == run_span.span_id
        assert run_span.attrs["problems"] == len(
            session.report.analysis.problems)

    def test_stage_virtual_time_matches_stage_data(self, session):
        by_name = {s.name: s for s in session.tracer.spans}
        sp = by_name["stage.stage1_baseline"]
        assert sp.virtual_duration == pytest.approx(
            session.report.stage1.execution_time)

    def test_documented_counters_are_populated(self, session):
        m = session.metrics
        assert m.get("core.syncs_traced").value > 0
        assert m.get("core.hashes_computed").value > 0
        assert m.get("core.graph_nodes_built").value > 0
        assert m.get("core.events_traced").value > 0
        assert m.get("core.benefit_nodes_processed").value > 0
        assert m.series("sim.ops_enqueued")
        assert m.series("sim.engine_busy_seconds")
        assert m.series("instr.probe_hits")

    def test_per_stage_wall_and_virtual_gauges(self, session):
        wall_stages = {dict(g.labels)["stage"]
                       for g in session.metrics.series("core.stage_wall_seconds")}
        assert wall_stages == {name[len("stage."):]
                               for name in EXPECTED_STAGE_SPANS}
        for g in session.metrics.series("core.stage_virtual_seconds"):
            assert g.value > 0.0

    def test_chrome_trace_covers_all_stages(self, session, tmp_path):
        path = tmp_path / "trace.json"
        session.tracer.write_chrome_trace(str(path))
        trace = json.loads(path.read_text())
        wall_names = {e["name"] for e in trace["traceEvents"]
                      if e.get("ph") == "X" and e["pid"] == 1}
        assert set(EXPECTED_STAGE_SPANS) <= wall_names

    def test_render_session_mentions_every_stage(self, session):
        text = render_session(session.tracer, session.metrics)
        for name in EXPECTED_STAGE_SPANS:
            assert name[len("stage."):] in text
        assert "core.syncs_traced" in text

    def test_hash_count_matches_report(self, session):
        assert session.metrics.get("core.hashes_computed").value == len(
            session.report.stage3.transfer_hashes)


class TestRender:
    def test_empty_session_renders_gracefully(self):
        assert "no stage spans" in render_stage_summary(Tracer())
        assert render_metrics(MetricsRegistry()) == "no metrics recorded"

    def test_histogram_line_shows_percentiles(self):
        reg = MetricsRegistry()
        h = reg.histogram("exec.job_wall_seconds", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 8.0):
            h.observe(v)
        (line,) = render_metrics(reg).splitlines()
        for token in ("count=3", "p50=", "p95=", "max=8"):
            assert token in line, line

    def test_stage_summary_gains_tool_column_with_ledger(self):
        from repro.obs.ledger import PerturbationLedger

        tracer = Tracer()
        with tracer.span("stage.stage1_baseline"):
            pass
        with tracer.span("stage.stage5_analysis"):
            pass
        plain = render_stage_summary(tracer)
        assert "tool ms" not in plain  # the old table is unchanged
        ledger = PerturbationLedger(calibrate=False)
        ledger.charge("stage1_baseline", "callbacks", 0.002, events=4)
        with_ledger = render_stage_summary(tracer, ledger)
        assert "tool ms" in with_ledger
        (row,) = [li for li in with_ledger.splitlines()
                  if li.startswith("stage1_baseline")]
        assert "2.000" in row  # 0.002 s -> 2.000 ms
        (unlisted,) = [li for li in with_ledger.splitlines()
                       if li.startswith("stage5_analysis")]
        assert " - " in unlisted  # stages without charges show a dash

    def test_overhead_ledger_table(self):
        from repro.obs.ledger import PerturbationLedger
        from repro.obs.render import render_overhead_ledger

        ledger = PerturbationLedger(calibrate=False)
        ledger.calibration = {"probe_fire_seconds": 1.5e-7,
                              "span_seconds": 2e-6, "iterations": 100}
        ledger.charge("stage1_baseline", "callbacks", 0.001, events=8)
        ledger.charge("stage3_hashing", "hashing", 0.0005, events=8)
        ledger.charge("stage3_hashing", "virtual", 0.25)
        text = render_overhead_ledger(ledger.as_json())
        lines = text.splitlines()
        assert "callbacks ms" in lines[0] and "virtual s" in lines[0]
        (row,) = [li for li in lines if li.startswith("stage3_hashing")]
        assert "0.500" in row and "0.250000" in row
        (total,) = [li for li in lines if li.startswith("total")]
        assert "1.000" in total and "0.500" in total
        assert "calibration: probe fire 150 ns, span 2000 ns" in text
        assert "(100 iterations)" in text

    def test_overhead_ledger_empty_message(self):
        from repro.obs.render import render_overhead_ledger

        assert "no overhead recorded" in render_overhead_ledger({})

    def test_render_session_appends_overhead_section(self):
        from repro.obs.ledger import PerturbationLedger

        tracer = Tracer()
        with tracer.span("stage.stage1_baseline"):
            pass
        ledger = PerturbationLedger(calibrate=False)
        ledger.charge("stage1_baseline", "tracing", 0.001, events=2)
        text = render_session(tracer, MetricsRegistry(), ledger)
        assert "overhead (tool self-measurement)" in text
        # No charges -> no section (the pre-ledger layout).
        bare = render_session(tracer, MetricsRegistry(),
                              PerturbationLedger(calibrate=False))
        assert "overhead (tool self-measurement)" not in bare


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
class TestCliIntegration:
    def test_trace_and_metrics_out(self, tmp_path, capsys):
        from repro.core.cli import main

        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.prom"
        rc = main(["run", "synthetic-quiet", "--view", "overview",
                   "--trace-out", str(trace_path),
                   "--metrics-out", str(metrics_path),
                   "--verbose-stages"])
        assert rc == 0
        trace = json.loads(trace_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "stage.stage1_baseline" in names
        prom = metrics_path.read_text()
        assert "# TYPE repro_core_syncs_traced counter" in prom
        out = capsys.readouterr().out
        assert "stage1_baseline" in out
        # The session is torn down after the run.
        assert obs.active() is None

    def test_jsonl_and_json_extensions_switch_format(self, tmp_path):
        from repro.core.cli import main

        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        rc = main(["run", "synthetic-quiet", "--view", "overview",
                   "--trace-out", str(trace_path),
                   "--metrics-out", str(metrics_path)])
        assert rc == 0
        for line in trace_path.read_text().splitlines():
            json.loads(line)
        metrics = json.loads(metrics_path.read_text())
        assert "core.syncs_traced" in metrics

    def test_plain_run_leaves_observability_off(self, capsys):
        from repro.core.cli import main

        assert main(["run", "synthetic-quiet", "--view", "overview"]) == 0
        assert obs.active() is None
