"""Tests for the data generators and the shared root-call tracker."""

import numpy as np
import pytest

from repro.apps.data import (
    gaussian_matrix,
    lid_driven_cavity,
    movielens_like,
    poisson_system,
)
from repro.core.rootprobe import RootTracker
from repro.driver.dispatch import Dispatcher
from repro.instr.stacks import CallStackTracker
from repro.sim.machine import Machine


class TestDataGenerators:
    def test_movielens_shape_and_determinism(self):
        a = movielens_like(users=100, items=50, ratings_per_user=5, seed=3)
        b = movielens_like(users=100, items=50, ratings_per_user=5, seed=3)
        assert a.nnz == 500
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.item_idx, b.item_idx)

    def test_movielens_ratings_are_half_stars(self):
        data = movielens_like(users=50, items=40, seed=1)
        assert set(np.unique(data.values * 2)) <= set(range(1, 11))

    def test_movielens_popularity_is_skewed(self):
        data = movielens_like(users=400, items=200, seed=2)
        counts = np.bincount(data.item_idx, minlength=200)
        head = counts[:20].sum()
        tail = counts[-20:].sum()
        assert head > 3 * tail  # blockbusters vs long tail

    def test_movielens_no_duplicate_ratings_per_user(self):
        data = movielens_like(users=30, items=50, ratings_per_user=10, seed=4)
        pairs = set(zip(data.user_idx.tolist(), data.item_idx.tolist()))
        assert len(pairs) == data.nnz

    def test_dense_matrix_roundtrip(self):
        data = movielens_like(users=10, items=8, ratings_per_user=3, seed=5)
        dense = data.dense()
        assert dense.shape == (10, 8)
        assert np.count_nonzero(dense) == data.nnz

    def test_cavity_initial_condition(self):
        case = lid_driven_cavity(n=16, reynolds=5000.0)
        assert np.all(case.u[-1, :] == 1.0)   # moving lid
        assert not np.any(case.u[:-1, :])     # fluid at rest
        assert case.dx == pytest.approx(1 / 15)

    def test_poisson_operator_is_spd_like(self):
        system = poisson_system(n=8, seed=1)
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(system.unknowns)
            assert x @ system.apply_operator(x) > 0  # positive definite

    def test_poisson_operator_matches_stencil(self):
        system = poisson_system(n=4)
        e = np.zeros(16)
        e[5] = 1.0  # interior point (1,1)
        y = system.apply_operator(e).reshape(4, 4)
        assert y[1, 1] == 4.0
        assert y[0, 1] == y[2, 1] == y[1, 0] == y[1, 2] == -1.0

    def test_gaussian_matrix_is_diagonally_dominant(self):
        a, b = gaussian_matrix(n=32, seed=9)
        off_diag = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off_diag)
        assert b.shape == (32,)


class TestRootTracker:
    def _dispatcher(self):
        d = Dispatcher(Machine(), CallStackTracker())
        for name in ("outer", "inner", "other"):
            d.register_symbol(name, "runtime")
        return d

    def test_nested_traced_calls_yield_one_root(self):
        d = self._dispatcher()
        tracker = RootTracker({"outer", "inner"})
        roots = []
        tracker.on_root_exit.append(lambda r: roots.append(r.record.name))
        d.attach(tracker.probe)
        d.call("outer", "runtime",
               lambda: d.call("inner", "runtime", lambda: None))
        assert roots == ["outer"]

    def test_untraced_wrapper_does_not_hide_roots(self):
        d = self._dispatcher()
        tracker = RootTracker({"inner"})
        roots = []
        tracker.on_root_exit.append(lambda r: roots.append(r.record.name))
        d.attach(tracker.probe)
        d.call("other", "runtime",
               lambda: d.call("inner", "runtime", lambda: None))
        assert roots == ["inner"]

    def test_occurrence_counting_per_site(self):
        d = self._dispatcher()
        tracker = RootTracker({"outer"})
        sites = []
        tracker.on_root_exit.append(lambda r: sites.append(r.site))
        d.attach(tracker.probe)
        with d.stacks.frame("app", "a.cpp", 1):
            d.call("outer", "runtime", lambda: None)
            d.call("outer", "runtime", lambda: None)
        with d.stacks.frame("app", "a.cpp", 2):
            d.call("outer", "runtime", lambda: None)
        assert [s.occurrence for s in sites] == [0, 1, 0]
        assert sites[0].address_key != sites[2].address_key

    def test_sequence_numbers_are_global(self):
        d = self._dispatcher()
        tracker = RootTracker({"outer", "inner"})
        seqs = []
        tracker.on_root_exit.append(lambda r: seqs.append(r.seq))
        d.attach(tracker.probe)
        d.call("outer", "runtime", lambda: None)
        d.call("inner", "runtime", lambda: None)
        assert seqs == [0, 1]

    def test_entry_callbacks_fire_before_impl(self):
        d = self._dispatcher()
        tracker = RootTracker({"outer"})
        order = []
        tracker.on_root_entry.append(lambda r: order.append("entry"))
        tracker.on_root_exit.append(lambda r: order.append("exit"))
        d.attach(tracker.probe)
        d.call("outer", "runtime", lambda: order.append("impl"))
        assert order == ["entry", "impl", "exit"]

    def test_current_root_visible_during_call(self):
        d = self._dispatcher()
        tracker = RootTracker({"outer"})
        d.attach(tracker.probe)
        seen = []

        def impl():
            seen.append(tracker.current_root.record.name)

        d.call("outer", "runtime", impl)
        assert seen == ["outer"]
        assert tracker.current_root is None
