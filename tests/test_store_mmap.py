"""The report store's v3 body segments: mmap serving and crash safety.

Store schema v3 writes each report's exact response bytes to a
``.body.json`` segment beside the envelope and serves fetches from an
mmap of it (``docs/columnar_format.md`` §4).  These tests pin the
contract: mapped bytes equal fallback bytes equal ``json.dumps(report,
indent=2)``; any torn, truncated, or missing segment degrades to the
decode path with *identical* bytes; pruning accounts and removes
bodies together with their envelopes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.service.store import (
    STORE_SCHEMA_VERSION,
    MappedBody,
    ReportIdentity,
    ReportStore,
)


def _report(tag: str = "a") -> dict:
    # Homogeneous record lists so the envelope's columnar encoding has
    # something to pool; schema_version is mandatory for put().
    return {
        "schema_version": 1,
        "app": f"app-{tag}",
        "problems": [
            {"kind": "unnecessary_synchronization", "benefit": 0.25,
             "site": {"address_key": [1, 2], "occurrence": i}}
            for i in range(4)
        ],
    }


def _identity(tag: str = "a") -> ReportIdentity:
    return ReportIdentity(workload=f"app-{tag}",
                          workload_fingerprint=f"wf-{tag}",
                          config_digest=tag, code_fingerprint="f",
                          schema_version=1)


@pytest.fixture()
def store(tmp_path):
    return ReportStore(tmp_path / "store")


class TestBodySegment:
    def test_put_writes_exact_response_bytes(self, store):
        report = _report()
        key = store.put(_identity(), report)
        body = store._body_path(key).read_bytes()
        assert body == json.dumps(report, indent=2).encode()
        envelope = store.get_envelope(key)
        assert envelope["schema"] == STORE_SCHEMA_VERSION
        assert envelope["body_bytes"] == len(body)

    def test_get_bytes_serves_mmap(self, store):
        report = _report()
        key = store.put(_identity(), report)
        served = store.get_bytes(key)
        assert isinstance(served, MappedBody)
        assert len(served) == len(json.dumps(report, indent=2).encode())
        assert served.tobytes() == json.dumps(report, indent=2).encode()
        assert bytes(served.view) == served.tobytes()
        served.close()
        served.close()  # idempotent

    def test_envelope_report_is_columnar_but_get_decodes(self, store):
        report = _report()
        key = store.put(_identity(), report)
        envelope = store.get_envelope(key)
        assert envelope["report"]["problems"].get("__columnar__") == 1
        assert store.get(key) == report

    def test_missing_key_is_none(self, store):
        assert store.get_bytes("0" * 40) is None
        assert store.get("0" * 40) is None


class TestFallback:
    def _fetch_bytes(self, store, key) -> bytes:
        served = store.get_bytes(key)
        if isinstance(served, MappedBody):
            data = served.tobytes()
            served.close()
            return data
        return served

    def test_missing_body_falls_back_to_identical_bytes(self, store):
        key = store.put(_identity(), _report())
        expected = self._fetch_bytes(store, key)
        store._body_path(key).unlink()
        fallback = store.get_bytes(key)
        assert isinstance(fallback, bytes)
        assert fallback == expected

    def test_truncated_body_falls_back_to_identical_bytes(self, store):
        key = store.put(_identity(), _report())
        expected = self._fetch_bytes(store, key)
        path = store._body_path(key)
        path.write_bytes(path.read_bytes()[:10])
        fallback = store.get_bytes(key)
        assert isinstance(fallback, bytes)
        assert fallback == expected

    def test_oversized_body_refused(self, store):
        key = store.put(_identity(), _report())
        expected = self._fetch_bytes(store, key)
        path = store._body_path(key)
        path.write_bytes(path.read_bytes() + b"garbage")
        fallback = store.get_bytes(key)
        assert isinstance(fallback, bytes)
        assert fallback == expected

    def test_non_dict_envelope_is_a_miss(self, store):
        key = store.put(_identity(), _report())
        store._path(key).write_text("[1, 2, 3]")
        assert store.get(key) is None
        assert store.get_envelope(key) is None

    def test_unversioned_report_is_a_miss(self, store):
        key = store.put(_identity(), _report())
        path = store._path(key)
        envelope = json.loads(path.read_text())
        del envelope["report"]["schema_version"]
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None

    def test_put_refuses_unversioned_reports(self, store):
        with pytest.raises(ValueError, match="schema_version"):
            store.put(_identity(), {"app": "a"})

    def test_foreign_schema_envelope_is_a_miss(self, store):
        key = store.put(_identity(), _report())
        path = store._path(key)
        envelope = json.loads(path.read_text())
        envelope["schema"] = STORE_SCHEMA_VERSION - 1
        path.write_text(json.dumps(envelope))
        assert store.get(key) is None
        assert store.get_bytes(key) is None


class TestAccounting:
    def test_stats_count_envelope_and_body(self, store):
        key = store.put(_identity(), _report())
        stats = store.stats()
        expected = (store._path(key).stat().st_size
                    + store._body_path(key).stat().st_size)
        assert stats == {"reports": 1, "bytes": expected}

    def test_len_excludes_bodies_and_traces(self, store):
        store.put(_identity("a"), _report("a"))
        store.put(_identity("b"), _report("b"))
        store.put_trace("job-1", {"spans": []})
        assert len(store) == 2

    def test_prune_evicts_body_with_envelope(self, store):
        old = store.put(_identity("a"), _report("a"))
        new = store.put(_identity("b"), _report("b"))
        os.utime(store._path(old), (1.0, 1.0))
        keep = (store._path(new).stat().st_size
                + store._body_path(new).stat().st_size)
        result = store.prune(max_bytes=keep)
        assert result["reports"] == 1 and result["bytes"] == keep
        assert not store._path(old).exists()
        assert not store._body_path(old).exists()
        assert store.get(new) is not None
        served = store.get_bytes(new)
        assert isinstance(served, MappedBody)
        served.close()

    def test_prune_sweeps_orphan_bodies_and_tmp_debris(self, store):
        key = store.put(_identity(), _report())
        shard = store._path(key).parent
        orphan = shard / ("f" * 40 + ".body.json")
        orphan.write_bytes(b"{}")
        debris = shard / "leftover.tmp"
        debris.write_bytes(b"partial")
        result = store.prune(max_bytes=1 << 30)
        assert result["removed"] == 2
        assert not orphan.exists() and not debris.exists()
        assert store.get(key) is not None

    def test_prune_never_touches_traces(self, store):
        store.put_trace("job-9", {"spans": [1]})
        store.prune(max_bytes=0)
        assert store.get_trace("job-9") == {"spans": [1]}

    def test_stats_tolerate_missing_body(self, store):
        key = store.put(_identity(), _report())
        store._body_path(key).unlink()
        assert store.stats()["reports"] == 1

    def test_empty_store_accounting(self, tmp_path):
        store = ReportStore(tmp_path / "never-created")
        assert len(store) == 0
        assert store.stats() == {"reports": 0, "bytes": 0}
        assert store.prune(max_bytes=0)["removed"] == 0

    def test_history_survives_prune(self, store):
        store.put(_identity("a"), _report("a"), job_id="job-1")
        store.prune(max_bytes=0)
        assert len(store) == 0
        entries = store.history()
        assert len(entries) == 1 and entries[0]["job_id"] == "job-1"
