"""Shared contract suite for job-queue backends (`repro.service.queue`,
`repro.service.sqlite`).

Every test in :class:`TestQueueContract` runs against *both* registered
backends — the atomic-file default and the sqlite/WAL implementation —
so behavioural parity is enforced, not assumed.  The contract covers
what the daemon and the fleet coordinator actually rely on:

* crash/restart recovery — local (``worker=None``) claims requeue
  immediately on reopen, remote leases survive until they expire;
* lease mechanics — heartbeats extend, expiry redelivers, a lost lease
  answers ``None``;
* exactly-once claiming — concurrent pulls over one queue hand each
  job to exactly one claimant.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.fleet.backends import backend_names, make_queue
from repro.service.queue import DONE, FAILED, RUNNING, SUBMITTED

BACKENDS = backend_names()


@pytest.fixture(params=BACKENDS)
def queue_factory(request, tmp_path):
    """Reopenable factory for one backend over one directory."""
    backend = request.param
    opened = []

    def factory():
        queue = make_queue(backend, tmp_path / "queue")
        opened.append(queue)
        return queue

    factory.backend = backend
    yield factory
    for queue in opened:
        queue.close()


def _submit(queue, n=1, key=None):
    return [queue.submit("app", {"i": i}, {"cfg": True},
                         key if key is not None else f"key{i}")
            for i in range(n)]


class TestQueueContract:
    def test_registry_names_both_backends(self):
        assert {"file", "sqlite"} <= set(BACKENDS)

    def test_lifecycle_persists_across_reopen(self, queue_factory):
        queue = queue_factory()
        (job,) = _submit(queue)
        assert job.state == SUBMITTED
        claimed = queue.claim_next()
        assert claimed.id == job.id and claimed.state == RUNNING
        queue.mark_done(claimed, "finalkey")
        reloaded = queue_factory()
        assert reloaded.get(job.id).state == DONE
        assert reloaded.get(job.id).report_key == "finalkey"
        assert reloaded.counts()[DONE] == 1

    def test_claims_are_oldest_first(self, queue_factory):
        queue = queue_factory()
        jobs = _submit(queue, n=3)
        assert [queue.claim_next().id for _ in range(3)] == \
            [j.id for j in jobs]
        assert queue.claim_next() is None

    def test_local_running_jobs_requeue_on_restart(self, queue_factory):
        queue = queue_factory()
        _submit(queue, n=2)
        queue.claim_next()  # local claim; the "daemon" dies here
        survivor = queue_factory()
        assert survivor.get("job-000001").state == SUBMITTED
        assert survivor.counts() == {SUBMITTED: 2, RUNNING: 0,
                                     DONE: 0, FAILED: 0}
        reclaimed = survivor.claim_next()
        assert reclaimed.id == "job-000001" and reclaimed.attempts == 2

    def test_live_remote_lease_survives_restart(self, queue_factory):
        queue = queue_factory()
        _submit(queue)
        job = queue.claim_next(worker="w1", lease_seconds=60.0)
        assert job.worker == "w1" and job.lease_expires is not None
        survivor = queue_factory()
        # The remote worker is still executing: leave its claim alone.
        reloaded = survivor.get(job.id)
        assert reloaded.state == RUNNING and reloaded.worker == "w1"

    def test_expired_remote_lease_requeues_on_restart(self, queue_factory):
        queue = queue_factory()
        _submit(queue)
        queue.claim_next(worker="w1", lease_seconds=0.01)
        time.sleep(0.03)
        survivor = queue_factory()
        job = survivor.get("job-000001")
        assert job.state == SUBMITTED
        assert job.worker is None and job.lease_expires is None

    def test_expire_leases_requeues_for_redelivery(self, queue_factory):
        queue = queue_factory()
        _submit(queue, n=2)
        held = queue.claim_next(worker="w1", lease_seconds=0.01)
        kept = queue.claim_next(worker="w2", lease_seconds=60.0)
        time.sleep(0.03)
        expired = queue.expire_leases()
        assert [j.id for j in expired] == [held.id]
        assert queue.get(held.id).state == SUBMITTED
        assert queue.get(kept.id).state == RUNNING
        # Redelivery increments attempts on the next claim.
        redelivered = queue.claim_job(held.id, worker="w3",
                                      lease_seconds=60.0)
        assert redelivered.attempts == 2 and redelivered.worker == "w3"

    def test_heartbeat_extends_live_lease_only(self, queue_factory):
        queue = queue_factory()
        _submit(queue)
        job = queue.claim_next(worker="w1", lease_seconds=5.0)
        before = job.lease_expires
        time.sleep(0.01)
        extended = queue.heartbeat(job.id, "w1", 5.0)
        assert extended.lease_expires > before
        # Wrong worker, or a lease already lost, answers None.
        assert queue.heartbeat(job.id, "w2", 5.0) is None
        queue.expire_leases(now=time.time() + 10.0)
        assert queue.heartbeat(job.id, "w1", 5.0) is None

    def test_claim_job_races_safely(self, queue_factory):
        queue = queue_factory()
        (job,) = _submit(queue)
        assert queue.claim_job(job.id, worker="w1").worker == "w1"
        assert queue.claim_job(job.id, worker="w2") is None
        assert queue.claim_job("job-does-not-exist") is None

    def test_concurrent_pulls_yield_each_job_exactly_once(
            self, queue_factory):
        queue = queue_factory()
        jobs = _submit(queue, n=24)
        claimed: list[str] = []
        lock = threading.Lock()

        def puller(worker_id):
            while True:
                job = queue.claim_next(worker=worker_id, lease_seconds=60.0)
                if job is None:
                    return
                with lock:
                    claimed.append(job.id)

        threads = [threading.Thread(target=puller, args=(f"w{i}",))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert sorted(claimed) == sorted(j.id for j in jobs)
        assert len(claimed) == len(set(claimed)) == 24

    def test_requeue_preserves_attempts(self, queue_factory):
        queue = queue_factory()
        _submit(queue)
        job = queue.claim_next(worker="w1", lease_seconds=60.0)
        queue.requeue(job)
        assert job.state == SUBMITTED and job.attempts == 1
        again = queue.claim_next(worker="w2", lease_seconds=60.0)
        assert again.id == job.id and again.attempts == 2

    def test_failed_state_and_error_survive_restart(self, queue_factory):
        queue = queue_factory()
        _submit(queue)
        job = queue.claim_next()
        queue.mark_failed(job, "KeyError: boom")
        reloaded = queue_factory()
        assert reloaded.get(job.id).state == FAILED
        assert reloaded.get(job.id).error == "KeyError: boom"

    def test_sequence_continues_after_restart(self, queue_factory):
        queue = queue_factory()
        _submit(queue, n=2)
        reloaded = queue_factory()
        job = reloaded.submit("app", {}, {}, "k")
        assert job.id == "job-000003"

    def test_born_done_submission(self, queue_factory):
        queue = queue_factory()
        job = queue.submit("app", {}, {}, "cachedkey", state=DONE)
        assert job.state == DONE
        assert queue.claim_next() is None
        assert queue.counts()[DONE] == 1

    def test_active_leases_counts_live_remote_claims(self, queue_factory):
        queue = queue_factory()
        _submit(queue, n=3)
        queue.claim_next()  # local: not a lease
        queue.claim_next(worker="w1", lease_seconds=60.0)
        queue.claim_next(worker="w2", lease_seconds=0.01)
        assert queue.active_leases() == 2
        assert queue.active_leases(now=time.time() + 1.0) == 1

    def test_depth_counts_only_waiting_jobs(self, queue_factory):
        queue = queue_factory()
        _submit(queue, n=2)
        queue.claim_next()
        assert queue.depth() == 1
