"""Unit + property tests for the columnar record-batch codec.

The codec's contract is exactness: ``decode(encode(x)) == x`` with key
order preserved, for every value the executor or service might ship.
Anything less would change input digests or report bytes downstream.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec.columnar import (
    FORMAT_VERSION,
    MARKER,
    decode_records,
    decode_tree,
    encode_records,
    encode_tree,
    is_columnar,
)


def _rows(n=6):
    stack = [{"function": "f<int>", "file": "a.cpp", "line": 7}]
    return [
        {"seq": i, "api": "cudaMemcpy" if i % 2 else "cudaFree",
         "stack": stack, "nbytes": 1024 * i, "wait": i * 1e-6}
        for i in range(n)
    ]


class TestEncodeRecords:
    def test_round_trip_exact(self):
        rows = _rows()
        batch = encode_records(rows)
        assert is_columnar(batch)
        assert decode_records(batch) == rows

    def test_key_order_preserved(self):
        rows = [{"b": 1, "a": 2}, {"b": 3, "a": 4}]
        decoded = decode_records(encode_records(rows))
        assert [list(r.keys()) for r in decoded] == [["b", "a"], ["b", "a"]]

    def test_composite_columns_dictionary_encoded(self):
        rows = _rows(10)
        batch = encode_records(rows)
        stack_col = batch["columns"][list(rows[0]).index("stack")]
        assert "dict" in stack_col
        assert len(stack_col["dict"]) == 1  # one distinct stack, pooled once
        assert len(stack_col["codes"]) == len(rows)

    def test_scalar_columns_stored_plain(self):
        batch = encode_records(_rows())
        seq_col = batch["columns"][0]
        assert seq_col == {"values": [0, 1, 2, 3, 4, 5]}

    def test_pooling_distinguishes_equal_but_distinct_types(self):
        # 1 == 1.0 == True in Python; canonical-JSON pooling keys must
        # keep them apart so re-serialization is byte-identical.
        rows = [{"v": [1]}, {"v": [1.0]}, {"v": [True]}, {"v": [1]}]
        batch = encode_records(rows)
        assert len(batch["columns"][0]["dict"]) == 3
        assert json.dumps(decode_records(batch)) == json.dumps(rows)

    def test_empty_list_not_encoded(self):
        assert encode_records([]) is None

    def test_non_dict_rows_not_encoded(self):
        assert encode_records([1, 2, 3]) is None
        assert encode_records([{"a": 1}, "nope"]) is None

    def test_heterogeneous_keys_not_encoded(self):
        assert encode_records([{"a": 1}, {"b": 2}]) is None
        assert encode_records([{"a": 1}, {"a": 1, "b": 2}]) is None

    def test_keyless_rows_not_encoded(self):
        assert encode_records([{}, {}]) is None

    def test_marker_collision_not_encoded(self):
        assert encode_records([{MARKER: FORMAT_VERSION, "a": 1}]) is None


class TestTreeCodec:
    def test_nested_lists_encoded_in_place(self):
        tree = {"stage2": {"events": _rows(), "execution_time": 1.5},
                "plain": [1, 2, 3]}
        encoded = encode_tree(tree)
        assert is_columnar(encoded["stage2"]["events"])
        assert encoded["stage2"]["execution_time"] == 1.5
        assert encoded["plain"] == [1, 2, 3]  # ineligible: passes through
        assert decode_tree(encoded) == tree

    def test_decode_tree_identity_on_plain_values(self):
        for value in (None, 7, "x", [1, 2], {"a": [{"b": 1}, {"b": 2}]}):
            assert decode_tree(value) == value

    def test_json_serializable_and_stable(self):
        tree = {"events": _rows()}
        once = json.dumps(encode_tree(tree), sort_keys=True)
        twice = json.dumps(encode_tree(tree), sort_keys=True)
        assert once == twice

    def test_encoded_form_smaller_for_repetitive_rows(self):
        rows = _rows(200)
        plain = len(json.dumps(rows))
        encoded = len(json.dumps(encode_records(rows)))
        assert encoded < plain


# ----------------------------------------------------------------------
# Property: round-trip over arbitrary JSON-able homogeneous row lists
# ----------------------------------------------------------------------
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=12),
)
_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
    ),
    max_leaves=8,
)
_keys = st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=5,
                 unique=True)


@st.composite
def _homogeneous_rows(draw):
    keys = draw(_keys)
    n = draw(st.integers(min_value=1, max_value=8))
    return [{k: draw(_values) for k in keys} for _ in range(n)]


@settings(max_examples=60, deadline=None)
@given(_homogeneous_rows())
def test_property_round_trip_is_exact(rows):
    batch = encode_records(rows)
    if batch is None:  # eligibility declined (e.g. a key equal to MARKER)
        return
    decoded = decode_records(batch)
    # Compare serialized form: catches type swaps (1 vs 1.0 vs True)
    # that Python == would forgive.
    assert json.dumps(decoded) == json.dumps(rows)
    assert [list(r.keys()) for r in decoded] == [list(r.keys()) for r in rows]


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(st.text(max_size=6),
                       st.one_of(_values, _homogeneous_rows()),
                       max_size=4))
def test_property_tree_round_trip(tree):
    assert json.dumps(decode_tree(encode_tree(tree))) == json.dumps(tree)


@settings(max_examples=40, deadline=None)
@given(_homogeneous_rows())
def test_property_encoded_batch_survives_json(rows):
    batch = encode_records(rows)
    if batch is None:
        return
    # The executor and store ship batches as JSON text; the codec must
    # tolerate that round trip too.
    revived = json.loads(json.dumps(batch))
    assert json.dumps(decode_records(revived)) == json.dumps(rows)
