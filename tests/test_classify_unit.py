"""Direct unit tests of the stage-5 classification matrix.

The integration tests exercise classification through real runs; these
construct stage records by hand so each rule of
:func:`repro.core.analysis.classify_operations` is pinned down in
isolation.
"""

import pytest

from repro.core.analysis import classify_operations
from repro.core.graph import ProblemKind
from repro.core.records import (
    FirstUseRecord,
    SiteKey,
    Stage2Data,
    Stage3Data,
    Stage4Data,
    SyncUseRecord,
    TraceEvent,
    TransferHashRecord,
)
from repro.instr.stacks import Frame, StackTrace


def _site(line: int, occurrence: int = 0) -> SiteKey:
    stack = StackTrace((Frame("main", "unit.cpp", line),))
    return SiteKey(stack.address_key(), occurrence)


def _event(site, *, is_sync=False, is_transfer=False, seq=0):
    stack = StackTrace((Frame("main", "unit.cpp", 1),))
    return TraceEvent(seq=seq, api_name="cudaX", stack=stack, site=site,
                      t_entry=0.0, t_exit=1.0, sync_wait=0.5 if is_sync else 0,
                      is_sync=is_sync, is_transfer=is_transfer)


def _sync_use(site, required, address=0xBEEF):
    return SyncUseRecord(site=site, api_name="cudaX", required=required,
                         access_address=address if required else 0)


def _hash(site, duplicate):
    return TransferHashRecord(site=site, api_name="cudaX", nbytes=64,
                              direction="h2d", digest="d", duplicate=duplicate)


class TestClassificationMatrix:
    def test_unrequired_sync_is_unnecessary(self):
        site = _site(1)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True)]),
            Stage3Data(1.0, sync_uses=[_sync_use(site, required=False)]),
            Stage4Data(1.0),
        )
        assert verdicts[site].sync_problem is ProblemKind.UNNECESSARY_SYNC

    def test_required_with_long_delay_is_misplaced(self):
        site = _site(2)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True)]),
            Stage3Data(1.0, sync_uses=[_sync_use(site, required=True)]),
            Stage4Data(1.0, first_uses=[FirstUseRecord(site, 500e-6)]),
            misplaced_min_delay=50e-6,
        )
        assert verdicts[site].sync_problem is ProblemKind.MISPLACED_SYNC
        assert verdicts[site].first_use_time == pytest.approx(500e-6)

    def test_required_with_prompt_use_is_clean(self):
        site = _site(3)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True)]),
            Stage3Data(1.0, sync_uses=[_sync_use(site, required=True)]),
            Stage4Data(1.0, first_uses=[FirstUseRecord(site, 1e-6)]),
            misplaced_min_delay=50e-6,
        )
        assert site not in verdicts

    def test_required_without_stage4_delay_is_clean(self):
        # Stage 4 saw no first use for this site: no misplacement claim.
        site = _site(4)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True)]),
            Stage3Data(1.0, sync_uses=[_sync_use(site, required=True)]),
            Stage4Data(1.0),
        )
        assert site not in verdicts

    def test_duplicate_transfer_flagged(self):
        site = _site(5)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_transfer=True)]),
            Stage3Data(1.0, transfer_hashes=[_hash(site, duplicate=True)]),
            Stage4Data(1.0),
        )
        assert verdicts[site].transfer_problem is \
            ProblemKind.UNNECESSARY_TRANSFER

    def test_fresh_transfer_clean(self):
        site = _site(6)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_transfer=True)]),
            Stage3Data(1.0, transfer_hashes=[_hash(site, duplicate=False)]),
            Stage4Data(1.0),
        )
        assert site not in verdicts

    def test_combined_sync_and_transfer_problem(self):
        site = _site(7)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True, is_transfer=True)]),
            Stage3Data(1.0,
                       sync_uses=[_sync_use(site, required=False)],
                       transfer_hashes=[_hash(site, duplicate=True)]),
            Stage4Data(1.0),
        )
        verdict = verdicts[site]
        assert verdict.sync_problem is ProblemKind.UNNECESSARY_SYNC
        assert verdict.transfer_problem is ProblemKind.UNNECESSARY_TRANSFER

    def test_sync_unseen_by_stage3_is_left_alone(self):
        # Cross-run divergence: stage 3 never observed this sync site;
        # without necessity data the operation must not be flagged.
        site = _site(8)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True)]),
            Stage3Data(1.0),
            Stage4Data(1.0),
        )
        assert site not in verdicts

    def test_occurrences_classified_independently(self):
        first, second = _site(9, 0), _site(9, 1)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(first, is_sync=True, seq=0),
                             _event(second, is_sync=True, seq=1)]),
            Stage3Data(1.0, sync_uses=[_sync_use(first, required=False),
                                       _sync_use(second, required=True)]),
            Stage4Data(1.0, first_uses=[FirstUseRecord(second, 900e-6)]),
        )
        assert verdicts[first].sync_problem is ProblemKind.UNNECESSARY_SYNC
        assert verdicts[second].sync_problem is ProblemKind.MISPLACED_SYNC

    def test_threshold_boundary_inclusive(self):
        site = _site(10)
        verdicts = classify_operations(
            Stage2Data(1.0, [_event(site, is_sync=True)]),
            Stage3Data(1.0, sync_uses=[_sync_use(site, required=True)]),
            Stage4Data(1.0, first_uses=[FirstUseRecord(site, 50e-6)]),
            misplaced_min_delay=50e-6,
        )
        assert verdicts[site].sync_problem is ProblemKind.MISPLACED_SYNC
